"""Standalone runner: the saturation-cutoff study on the wide-hierarchy suite.

Usage::

    python benchmarks/run_saturation_study.py [--thresholds 2,4,8,16]
                                              [--benchmark wide-deep-216]
                                              [--jobs 4] [--cache-dir .bench-cache]
                                              [--output saturation_study.txt]

For every benchmark of the ``WideHierarchy`` suite (hundreds of allocated
receiver types per flow — see ``repro.workloads.suites.wide_hierarchy_suite``)
the script sweeps ``AnalysisConfig.saturation_threshold`` over the requested
cutoffs plus the exact reference (cutoff off) and prints one table per
benchmark: reachable-method / polymorphic-call precision loss against the
exact SkipFlow run, and solver-join / wall-time savings, via
:mod:`repro.reporting.saturation`.

The sweep leans on the engine's per-configuration cache: the PTA baseline
config never changes across sweep points, so with ``--cache-dir`` every
benchmark's baseline is analyzed exactly once and each later point only
solves its SkipFlow half (the cache-hit summary printed at the end shows the
reuse).  The shared program store likewise builds each benchmark's IR once
for the whole sweep.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.core.analysis import AnalysisConfig
from repro.engine import ResultCache, run_specs
from repro.reporting.saturation import (
    DEFAULT_THRESHOLDS,
    format_saturation_study,
    saturation_series,
    summarize_sweep,
)
from repro.workloads.suites import wide_hierarchy_suite


def parse_thresholds(text: str) -> List[Optional[int]]:
    """Parse ``"2,4,8,16"`` (an ``off`` entry is allowed) into sweep points.

    The exact reference (``None``) is always included, so the returned sweep
    has one more point than the flag lists cutoffs.
    """
    thresholds: List[Optional[int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part.lower() in ("off", "none"):
            continue  # the exact point is appended below
        value = int(part)
        if value < 1:
            raise ValueError(f"saturation threshold must be >= 1, got {value}")
        thresholds.append(value)
    thresholds.sort()
    thresholds.append(None)
    return thresholds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--thresholds", type=str, default=None,
                        help="comma-separated saturation cutoffs to sweep "
                             "(default: 2,4,8,16; the exact reference run is "
                             "always added)")
    parser.add_argument("--benchmark", type=str, default=None,
                        help="restrict to one wide-hierarchy benchmark")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the benchmark engine")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="directory for the on-disk result cache "
                             "(lets every sweep point reuse the baseline half)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the tables to this file")
    args = parser.parse_args(argv)

    if args.thresholds is not None:
        try:
            thresholds = parse_thresholds(args.thresholds)
        except ValueError as error:
            print(f"run_saturation_study: {error}", file=sys.stderr)
            return 2
    else:
        thresholds = list(DEFAULT_THRESHOLDS)

    specs = wide_hierarchy_suite()
    if args.benchmark:
        specs = [spec for spec in specs if spec.name == args.benchmark]
        if not specs:
            names = ", ".join(spec.name for spec in wide_hierarchy_suite())
            print(f"run_saturation_study: unknown benchmark "
                  f"{args.benchmark!r}; expected one of: {names}", file=sys.stderr)
            return 2

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    baseline = AnalysisConfig.baseline_pta()

    # One engine run per sweep point; the baseline config is identical across
    # points, so with a cache its half is computed once per spec.
    results_by_threshold: Dict[Optional[int], List] = {}
    for threshold in thresholds:
        skipflow = AnalysisConfig.skipflow().with_saturation_threshold(threshold)
        label = "off" if threshold is None else threshold
        print(f"sweep point threshold={label} "
              f"({len(specs)} benchmarks)...", file=sys.stderr)
        results_by_threshold[threshold] = run_specs(
            specs, jobs=max(args.jobs, 1), cache=cache,
            baseline_config=baseline, skipflow_config=skipflow)

    sections: List[str] = []
    for index, spec in enumerate(specs):
        per_spec = {threshold: results[index]
                    for threshold, results in results_by_threshold.items()}
        points = saturation_series(per_spec)
        section = format_saturation_study(spec.name, points)
        summary = summarize_sweep(points)
        section += (
            f"\n\nmost aggressive cutoff: "
            f"+{summary['reachable_loss_percent']:.1f}% reachable methods, "
            f"{summary['joins_savings_percent']:+.1f}% joins saved, "
            f"{summary['time_savings_percent']:+.1f}% analysis time saved, "
            f"{summary['saturated_flows']:.0f} saturated flows\n"
        )
        sections.append(section)
        print(section)

    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses "
              f"({cache.directory})", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(sections))
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
