"""Standalone runner: the solver-kernel policy study on the wide-hierarchy suite.

Usage::

    python benchmarks/run_policy_study.py [--schedulings fifo,lifo,degree,rpo,hybrid]
                                          [--saturations off,closed-world,declared-type,allocated-type]
                                          [--threshold 16]
                                          [--benchmark composed-duo-112]
                                          [--jobs 4] [--cache-dir .bench-cache]
                                          [--bench-dir benchmarks/trajectories]
                                          [--bench-index N]
                                          [--output policy_study.txt] [--quick]

For every benchmark of the ``WideHierarchy`` suite — the five single-tree
wide specs plus the composed multi-hierarchy specs — the script runs the
SkipFlow configuration under every requested scheduling×saturation
combination through the benchmark engine and prints one table per benchmark
(:mod:`repro.reporting.policy`): solver steps/joins/wall-time deltas against
the bit-identical ``fifo``/``off`` reference, plus the reachable-method
precision loss each saturation sentinel costs.

Two questions the study answers directly:

* **scheduling** — which worklist order reaches the (identical) fixed point
  cheapest on megamorphic workloads;
* **saturation** — whether the ``declared-type`` sentinel keeps the
  reachable-set re-inflation (and the solver-steps *increase* the
  closed-world sentinel shows on this suite) smaller than ``closed-world``,
  and whether the RTA-style ``allocated-type`` sentinel — whose top
  excludes declared-but-never-allocated types — finally discharges the
  rare guards and erases most of the re-inflation.

Every combination is one engine configuration, so each (spec, policy) half
is cached independently under ``--cache-dir`` and the whole grid reuses any
halves earlier runs (or the saturation study) already computed.  ``--quick``
shrinks the grid to a CI-sized smoke (two cheap specs, fifo/lifo/degree ×
off/declared-type).

Every run is also persisted as a versioned ``BENCH_<n>.json`` trajectory
under ``--bench-dir`` (:mod:`repro.reporting.trajectory`), one row per
(spec, policy) cell with its solver steps, joins, and wall time — the
series the wall-time regression gate
(``benchmarks/check_solver_regression.py --wall-time-dir``) audits.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.core.analysis import AnalysisConfig
from repro.core.kernel import (
    SolverPolicy,
    available_saturation_policies,
    available_scheduling_policies,
)
from repro.engine import ResultCache, run_config_matrix
from repro.engine.scheduler import estimated_cost
from repro.reporting.policy import (
    format_policy_study,
    policy_points,
    summarize_policy_sweep,
)
from repro.reporting.trajectory import TrajectoryRow, write_trajectory
from repro.workloads.suites import wide_hierarchy_suite

DEFAULT_SCHEDULINGS = ("fifo", "lifo", "degree", "rpo", "hybrid")
DEFAULT_SATURATIONS = ("off", "closed-world", "declared-type",
                       "allocated-type")
DEFAULT_THRESHOLD = 16

QUICK_SCHEDULINGS = ("fifo", "lifo", "degree")
QUICK_SATURATIONS = ("off", "declared-type")
QUICK_SPECS = 2


def _parse_names(text: str, kind: str, available) -> List[str]:
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise ValueError(f"no {kind} policies given")
    for name in names:
        if name not in available:
            raise ValueError(f"unknown {kind} policy {name!r}; available: "
                             f"{', '.join(available)}")
    return names


def build_policies(schedulings: List[str], saturations: List[str],
                   threshold: int) -> List[SolverPolicy]:
    """The policy grid, ``fifo``/``off`` (the reference) always first."""
    policies = []
    for saturation in saturations:
        for scheduling in schedulings:
            policies.append(SolverPolicy(
                scheduling=scheduling, saturation=saturation,
                saturation_threshold=None if saturation == "off" else threshold))
    reference = SolverPolicy()
    if reference in policies:
        policies.remove(reference)
    policies.insert(0, reference)
    return policies


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schedulings", type=str, default=None,
                        help="comma-separated worklist policies "
                             f"(default: {','.join(DEFAULT_SCHEDULINGS)})")
    parser.add_argument("--saturations", type=str, default=None,
                        help="comma-separated saturation policies "
                             f"(default: {','.join(DEFAULT_SATURATIONS)})")
    parser.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                        help="saturation threshold for the non-off policies "
                             f"(default: {DEFAULT_THRESHOLD})")
    parser.add_argument("--benchmark", type=str, default=None,
                        help="restrict to one wide-hierarchy benchmark")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the benchmark engine")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="directory for the on-disk result cache")
    parser.add_argument("--bench-dir", type=str, default=None,
                        help="directory for the BENCH_<n>.json trajectory "
                             "(default: benchmarks/trajectories; pass '' "
                             "to skip writing)")
    parser.add_argument("--bench-index", type=int, default=None,
                        help="pin the trajectory number instead of taking "
                             "the next free one")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the tables to this file")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized grid: the two cheapest specs, "
                             f"{'/'.join(QUICK_SCHEDULINGS)} x "
                             f"{'/'.join(QUICK_SATURATIONS)}")
    args = parser.parse_args(argv)

    try:
        schedulings = _parse_names(
            args.schedulings or ",".join(
                QUICK_SCHEDULINGS if args.quick else DEFAULT_SCHEDULINGS),
            "scheduling", available_scheduling_policies())
        saturations = _parse_names(
            args.saturations or ",".join(
                QUICK_SATURATIONS if args.quick else DEFAULT_SATURATIONS),
            "saturation", available_saturation_policies())
        if args.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {args.threshold}")
    except ValueError as error:
        print(f"run_policy_study: {error}", file=sys.stderr)
        return 2

    specs = wide_hierarchy_suite()
    if args.benchmark:
        specs = [spec for spec in specs if spec.name == args.benchmark]
        if not specs:
            names = ", ".join(spec.name for spec in wide_hierarchy_suite())
            print(f"run_policy_study: unknown benchmark {args.benchmark!r}; "
                  f"expected one of: {names}", file=sys.stderr)
            return 2
    elif args.quick:
        specs = sorted(specs, key=estimated_cost)[:QUICK_SPECS]

    policies = build_policies(schedulings, saturations, args.threshold)
    configs = [AnalysisConfig.skipflow().with_policy(policy)
               for policy in policies]
    labels = [policy.label for policy in policies]

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    print(f"policy grid: {len(policies)} combinations x {len(specs)} "
          f"benchmarks (threshold {args.threshold})...", file=sys.stderr)
    rows = run_config_matrix(specs, configs, names=labels,
                             jobs=max(args.jobs, 1), cache=cache)

    sections: List[str] = []
    trajectory_rows: List[TrajectoryRow] = []
    total_steps = 0
    for spec, row in zip(specs, rows):
        points = policy_points(row)
        for point in points:
            trajectory_rows.append(TrajectoryRow(
                spec=spec.name, policy=point.label, kernel="object",
                steps=point.solver_steps, joins=point.solver_joins,
                wall_time_seconds=point.analysis_time_seconds))
            total_steps += point.solver_steps
        section = format_policy_study(spec.name, points)
        summary = summarize_policy_sweep(points)
        losses = ", ".join(
            f"{saturation}: {loss:+.1f}%" for saturation, loss in
            summary["reachable_loss_percent_by_saturation"].items())
        section += (
            f"\n\ncheapest: {summary['cheapest_label']} "
            f"({summary['cheapest_steps_delta_percent']:+.1f}% steps); "
            f"reachable loss by sentinel: {losses}\n"
        )
        sections.append(section)
        print(section)

    bench_dir = args.bench_dir
    if bench_dir is None:
        bench_dir = str(Path(__file__).parent / "trajectories")
    if bench_dir:
        target = write_trajectory(
            bench_dir, study="policy-grid", rows=trajectory_rows,
            headline=("policy_grid_total_steps", total_steps),
            extra={"benchmarks": [spec.name for spec in specs],
                   "schedulings": schedulings, "saturations": saturations,
                   "threshold": args.threshold, "quick": args.quick},
            index=args.bench_index)
        print(f"wrote {target}", file=sys.stderr)
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses "
              f"({cache.directory})", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(sections))
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
