"""Ablation: predicate edges vs primitive value tracking (Section 6 discussion).

The guard patterns differ in which ingredient they need:

* ``null_default`` is provable with predicate edges alone;
* ``boolean_flag`` and ``instanceof_flag`` need predicates *and* primitive
  constants (the flag value must survive the interprocedural flow);
* the baseline proves none of them.

The benchmark runs the four engine configurations over one application per
pattern and checks this ordering, which explains why the full SkipFlow
configuration is the one evaluated in the paper.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import AnalysisConfig
from repro.image.builder import NativeImageBuilder
from repro.workloads.generator import BenchmarkSpec, GuardedModuleSpec, generate_benchmark

_CONFIGS = {
    "PTA": AnalysisConfig.baseline_pta(),
    "primitives-only": AnalysisConfig.primitives_only(),
    "predicates-only": AnalysisConfig.predicates_only(),
    "SkipFlow": AnalysisConfig.skipflow(),
}


def _spec(pattern: str) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=f"ablation-{pattern}",
        suite="ablation",
        core_methods=40,
        guarded_modules=(GuardedModuleSpec(pattern, 30),),
    )


def _reachable_by_config(pattern: str):
    counts = {}
    for name, config in _CONFIGS.items():
        program = generate_benchmark(_spec(pattern))
        report = NativeImageBuilder(program, config, benchmark_name=pattern).build()
        counts[name] = report.reachable_methods
    return counts


@pytest.mark.parametrize("pattern", ["null_default", "boolean_flag",
                                     "instanceof_flag", "never_returns"])
def test_ablation_guard_patterns(benchmark, pattern):
    counts = benchmark.pedantic(_reachable_by_config, args=(pattern,),
                                rounds=1, iterations=1)
    benchmark.extra_info["reachable_by_config"] = counts
    print(f"\n{pattern}: {counts}")

    # The full analysis is always at least as precise as every ablation, and
    # strictly better than the baseline.
    assert counts["SkipFlow"] <= counts["predicates-only"]
    assert counts["SkipFlow"] <= counts["primitives-only"]
    assert counts["SkipFlow"] < counts["PTA"]
    # Primitive tracking alone (no predicates) cannot remove any guarded module.
    assert counts["primitives-only"] == counts["PTA"]
    if pattern in ("null_default", "never_returns"):
        # These patterns need no primitive values: predicates alone suffice.
        assert counts["predicates-only"] == counts["SkipFlow"]
    else:
        # Interprocedural boolean flags need both ingredients.
        assert counts["predicates-only"] > counts["SkipFlow"]
