"""Shared helpers for the benchmark harness.

Every table and figure of the paper's evaluation has one benchmark module:

========================  =====================================================
``bench_table1_dacapo``    Table 1, DaCapo block (8 benchmarks)
``bench_table1_micro``     Table 1, Microservices block (9 benchmarks)
``bench_table1_renaissance``  Table 1, Renaissance block (18 benchmarks)
``bench_figure9``          Figure 9 (normalized metrics per suite)
``bench_ablation_features``   Section 6 discussion: predicates vs primitives
``bench_ablation_noreturn``   Section 3: method invocations as predicates
``bench_solver_scaling``   Analysis-time scaling with program size
========================  =====================================================

The pytest-benchmark runs use a reduced ``BENCH_SCALE`` so the whole harness
finishes in a few minutes; the standalone ``run_table1.py`` / ``run_figure9.py``
scripts accept ``--scale`` for larger runs.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.engine import ResultCache, run_specs
from repro.engine.runner import ComparisonResult
from repro.workloads.generator import BenchmarkSpec

#: Synthetic methods generated per thousand paper-reported methods during benchmarking.
BENCH_SCALE = 1.0

#: Environment knobs for the engine-backed harness: worker processes and an
#: optional shared result cache (both off by default so pytest-benchmark
#: timings keep measuring actual solves).
JOBS_ENV = "REPRO_BENCH_JOBS"
CACHE_ENV = "REPRO_BENCH_CACHE_DIR"


def run_suite(specs: List[BenchmarkSpec]) -> List[ComparisonResult]:
    """Run the PTA/SkipFlow comparison for every benchmark of a suite."""
    jobs = int(os.environ.get(JOBS_ENV, "1"))
    cache_dir = os.environ.get(CACHE_ENV)
    cache = ResultCache(cache_dir) if cache_dir else None
    return run_specs(specs, jobs=jobs, cache=cache)


def record_comparisons(benchmark, comparisons: List[ComparisonResult]) -> None:
    """Attach the per-benchmark reductions to the pytest-benchmark record."""
    benchmark.extra_info["reductions_percent"] = {
        comparison.benchmark: round(comparison.reachable_method_reduction_percent, 2)
        for comparison in comparisons
    }


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
