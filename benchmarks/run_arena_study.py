"""Standalone runner: arena-kernel cold-solve throughput vs the object kernel.

Usage::

    python benchmarks/run_arena_study.py [--benchmark fop]
                                         [--cache-dir .bench-cache]
                                         [--min-speedup 1.5]
                                         [--bench-dir benchmarks/trajectories]
                                         [--bench-index N]
                                         [--output arena_study.txt]
                                         [--quick]

For every benchmark of the DaCapo-style suite (or one ``--benchmark``) under
the N-way policy matrix (PTA, SkipFlow, SkipFlow + declared-type saturation,
SkipFlow + degree scheduling), the script measures what one engine worker
pays for a *cold* solve — program decode plus analysis plus image reports —
under both propagation kernels:

* **object**: unpickle the stored IR blob, run the default solver over the
  object graph;
* **arena**: ``mmap``-attach the stored arena blob (zero decode) and run the
  index-based kernel straight on the buffer.

Both halves produce the full per-configuration payload of the engine matrix
(``repro.engine.runner._report_payload``); the study asserts the payloads
are bit-identical modulo timing, so the speedup column can never hide a
results divergence.  The headline is total object wall time over total
arena wall time; ``--min-speedup`` (default 1.5, the tentpole target) turns
it into an exit-code gate.  Per-half decode time is reported separately so
"unpickle gone" is visible, not inferred.

Every run is persisted as a versioned ``BENCH_<n>.json`` trajectory under
``--bench-dir`` (:mod:`repro.reporting.trajectory`); ``BENCH_1.json`` is the
study's first recorded run and later runs extend the series that
``python -m repro.reporting.trajectory <dir>`` renders.  ``--quick``
shrinks the sweep to the two cheapest specs and two configurations and
relaxes the default gate to 1.0 (CI runners are too noisy for a hard 1.5).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.analysis import AnalysisConfig
from repro.engine import ProgramStore, ResultCache
from repro.engine.runner import _report_payload
from repro.engine.scheduler import estimated_cost
from repro.image.builder import NativeImageBuilder
from repro.reporting.trajectory import TrajectoryRow, write_trajectory
from repro.workloads.suites import dacapo_suite

QUICK_SPECS = 2
QUICK_CONFIGS = 2
DEFAULT_MIN_SPEEDUP = 1.5
QUICK_MIN_SPEEDUP = 1.0

#: Timing keys excluded from the bit-identity comparison (everything else
#: in the payload — counts, sizes, step/join/transfer counters — must match
#: exactly between the kernels).
_TIMING_KEYS = frozenset({"analysis_time_seconds", "total_time_seconds"})


def matrix_configs() -> List[Tuple[str, AnalysisConfig]]:
    """The study's policy columns: the N-way matrix the engine sweeps."""
    return [
        ("pta", AnalysisConfig.baseline_pta()),
        ("skipflow", AnalysisConfig.skipflow()),
        ("skipflow+sat16", AnalysisConfig.skipflow()
            .with_saturation_policy("declared-type", 16)),
        ("skipflow+degree", AnalysisConfig.skipflow()
            .with_scheduling("degree")),
    ]


def _strip_timing(payload: Dict[str, object]) -> Dict[str, object]:
    return {key: value for key, value in payload.items()
            if key not in _TIMING_KEYS}


def measure_half(program, config: AnalysisConfig, spec) -> Dict[str, object]:
    """One cold solve (analysis + image reports) over an already-decoded program."""
    report = NativeImageBuilder(program, config,
                                benchmark_name=spec.name).build()
    return _report_payload(report)


def run_cell(spec, label: str, config: AnalysisConfig,
             store: ProgramStore):
    """Measure one (spec, policy) cell under both kernels.

    Returns (rows, object_seconds, arena_seconds, decode_seconds pair,
    payloads_match).  Decode is *inside* the timed window for both halves —
    the study measures what a worker pays, and killing the decode is half
    the point.
    """
    store.load_or_build(spec)  # Warm the disk blob; not part of either half.

    started = time.perf_counter()
    program = store.load(spec)
    object_decode = time.perf_counter() - started
    assert program is not None, f"store lost the pickle for {spec.name}"
    object_payload = measure_half(program, config.with_kernel("object"), spec)
    object_total = time.perf_counter() - started

    started = time.perf_counter()
    attached = store.attach(spec)
    arena_decode = time.perf_counter() - started
    assert attached is not None, f"store lost the arena for {spec.name}"
    arena_payload = measure_half(attached, config.with_kernel("arena"), spec)
    arena_total = time.perf_counter() - started

    rows = [
        TrajectoryRow(spec=spec.name, policy=label, kernel="object",
                      steps=int(object_payload["solver_steps"]),
                      joins=int(object_payload["solver_joins"]),
                      wall_time_seconds=object_total),
        TrajectoryRow(spec=spec.name, policy=label, kernel="arena",
                      steps=int(arena_payload["solver_steps"]),
                      joins=int(arena_payload["solver_joins"]),
                      wall_time_seconds=arena_total),
    ]
    match = _strip_timing(object_payload) == _strip_timing(arena_payload)
    return rows, object_total, arena_total, (object_decode, arena_decode), match


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", type=str, default=None,
                        help="restrict to one DaCapo-style benchmark")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="program-store directory (default: a fresh "
                             "temporary directory)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help=f"fail below this aggregate speedup (default "
                             f"{DEFAULT_MIN_SPEEDUP}, or "
                             f"{QUICK_MIN_SPEEDUP} with --quick)")
    parser.add_argument("--bench-dir", type=str, default=None,
                        help="directory for the BENCH_<n>.json trajectory "
                             "(default: benchmarks/trajectories; pass '' "
                             "to skip writing)")
    parser.add_argument("--bench-index", type=int, default=None,
                        help="pin the trajectory number instead of taking "
                             "the next free one")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the study text to this file")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI-sized sweep: {QUICK_SPECS} cheapest specs, "
                             f"{QUICK_CONFIGS} configurations")
    args = parser.parse_args(argv)

    specs = list(dacapo_suite())
    if args.benchmark:
        specs = [spec for spec in specs if spec.name == args.benchmark]
        if not specs:
            names = ", ".join(spec.name for spec in dacapo_suite())
            print(f"run_arena_study: unknown benchmark {args.benchmark!r}; "
                  f"expected one of: {names}", file=sys.stderr)
            return 2
    elif args.quick:
        specs = sorted(specs, key=estimated_cost)[:QUICK_SPECS]
    configs = matrix_configs()
    if args.quick:
        configs = configs[:QUICK_CONFIGS]
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = QUICK_MIN_SPEEDUP if args.quick else DEFAULT_MIN_SPEEDUP

    if args.cache_dir:
        cache = ResultCache(args.cache_dir)
        store = ProgramStore(cache.directory / "programs",
                             code_version=cache.code_version)
        scratch = None
    else:
        scratch = tempfile.TemporaryDirectory(prefix="repro-arena-study-")
        store = ProgramStore(scratch.name)

    print(f"arena study: {len(specs)} benchmarks x {len(configs)} "
          f"configurations, both kernels...", file=sys.stderr)
    rows: List[TrajectoryRow] = []
    lines: List[str] = []
    object_sum = arena_sum = 0.0
    object_decode_sum = arena_decode_sum = 0.0
    mismatches = 0
    header = (f"{'benchmark':<16} {'policy':<16} {'object':>9} {'arena':>9} "
              f"{'speedup':>8} {'decode o/a (ms)':>16}  identical")
    lines.append(header)
    lines.append("-" * len(header))
    for spec in specs:
        for label, config in configs:
            (cell_rows, object_total, arena_total,
             (object_decode, arena_decode), match) = run_cell(
                spec, label, config, store)
            rows.extend(cell_rows)
            object_sum += object_total
            arena_sum += arena_total
            object_decode_sum += object_decode
            arena_decode_sum += arena_decode
            if not match:
                mismatches += 1
            lines.append(
                f"{spec.name:<16} {label:<16} {object_total:>8.3f}s "
                f"{arena_total:>8.3f}s {object_total / arena_total:>7.2f}x "
                f"{object_decode * 1000:>7.1f}/{arena_decode * 1000:<7.1f}  "
                f"{'yes' if match else 'NO'}")

    speedup = object_sum / arena_sum if arena_sum else float("inf")
    lines.append("-" * len(header))
    lines.append(
        f"total: object {object_sum:.3f}s vs arena {arena_sum:.3f}s "
        f"-> {speedup:.2f}x cold-solve speedup")
    lines.append(
        f"decode: unpickle {object_decode_sum * 1000:.1f} ms total vs "
        f"arena attach {arena_decode_sum * 1000:.1f} ms total")
    text = "\n".join(lines)
    print(text)

    bench_dir = args.bench_dir
    if bench_dir is None:
        bench_dir = str(Path(__file__).parent / "trajectories")
    if bench_dir:
        target = write_trajectory(
            bench_dir, study="arena-cold-solve", rows=rows,
            headline=("arena_cold_solve_speedup_x", round(speedup, 3)),
            extra={"benchmarks": [spec.name for spec in specs],
                   "policies": [label for label, _ in configs],
                   "quick": args.quick},
            index=args.bench_index)
        print(f"wrote {target}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if scratch is not None:
        scratch.cleanup()

    if mismatches:
        print(f"run_arena_study: {mismatches} cell(s) had payload "
              f"divergence between the kernels", file=sys.stderr)
        return 1
    if speedup < min_speedup:
        print(f"run_arena_study: aggregate speedup {speedup:.2f}x is below "
              f"the required {min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
