"""Standalone runner: warm re-analysis versus cold solves over edit sequences.

Usage::

    python benchmarks/run_incremental_study.py [--benchmark wide-huge-512]
                                               [--steps 4]
                                               [--scheduling fifo]
                                               [--saturation-policy declared-type
                                                --threshold 16]
                                               [--cache-dir .bench-cache]
                                               [--bench-dir benchmarks/trajectories]
                                               [--bench-index N]
                                               [--output incremental_study.txt]
                                               [--quick]

For every benchmark of the ``WideHierarchy`` suite (or one ``--benchmark``),
the script solves the base program cold, then replays a deterministic edit
sequence (:func:`repro.workloads.edits.default_edit_script`: a new type
variant, a new dispatch site, a new guarded module, rotating): after each
edit the solve is *resumed* from the previous fixpoint and the same edited
program is also solved *cold*, so every step reports the warm increment
against the full from-scratch cost — steps, joins, and wall time — plus an
equivalence check that both solves reached the identical fixpoint
(:mod:`repro.reporting.incremental` renders the table).

The first step is always the single-method ``add-variant`` edit; its
``Warm%`` column is the study's headline number (a few percent of the cold
solve on the larger specs).

With ``--cache-dir``, built base IR comes from the engine's program store
and every post-edit solver state is persisted into the
:class:`~repro.engine.snapshots.SnapshotStore` under
``<cache dir>/snapshots``, keyed by the edit-script prefix — a later run
(or the CI smoke) can resume any step without replaying the chain.
``--quick`` shrinks the sweep to the two cheapest specs and two steps.

Every run is also persisted as a versioned ``BENCH_<n>.json`` trajectory
under ``--bench-dir`` (:mod:`repro.reporting.trajectory`): per spec, one
``warm``-policy row (the edit sequence's total warm cost) and one ``cold``
row, with the aggregate first-step warm percentage as the headline the
trend renderer tracks.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.engine import ProgramStore, ResultCache, SnapshotStore
from repro.engine.scheduler import estimated_cost
from repro.reporting.incremental import (
    IncrementalPoint,
    format_incremental_study,
    summarize_incremental,
)
from repro.reporting.trajectory import TrajectoryRow, write_trajectory
from repro.workloads.edits import build_edit_delta, default_edit_script
from repro.workloads.generator import generate_benchmark
from repro.workloads.suites import wide_hierarchy_suite

DEFAULT_STEPS = 4
QUICK_SPECS = 2
QUICK_STEPS = 2


def _study_config(args) -> AnalysisConfig:
    config = AnalysisConfig.skipflow()
    if args.scheduling:
        config = config.with_scheduling(args.scheduling)
    if args.saturation_policy and args.saturation_policy != "off":
        config = config.with_saturation_policy(args.saturation_policy,
                                               args.threshold)
    return config


def run_edit_sequence(spec, config, steps, *, program_store=None,
                      snapshot_store=None):
    """One spec's edit sequence; returns (script, points, snapshots stored)."""
    if program_store is not None:
        program, _ = program_store.load_or_build(spec)
    else:
        program = generate_benchmark(spec)
    script = default_edit_script(spec, steps)

    started = time.perf_counter()
    base = SkipFlowAnalysis(program, config).run()
    base_time = time.perf_counter() - started
    chain = base.solver_state
    stored = 0
    if snapshot_store is not None:
        snapshot_store.store(script.prefix(0), config, chain, program)
        stored += 1

    points: List[IncrementalPoint] = []
    for count, step in enumerate(script.steps, start=1):
        delta = build_edit_delta(spec, step)
        delta.apply_to(program, require_monotone=True)

        before = chain.counters()
        started = time.perf_counter()
        warm = SkipFlowAnalysis(program, config, state=chain).run()
        warm_time = time.perf_counter() - started

        started = time.perf_counter()
        cold = SkipFlowAnalysis(program, config).run()
        cold_time = time.perf_counter() - started

        points.append(IncrementalPoint(
            label=step.label,
            warm_steps=warm.steps - before["steps"],
            warm_joins=warm.stats.joins - before["joins"],
            warm_time_seconds=warm_time,
            cold_steps=cold.steps,
            cold_joins=cold.stats.joins,
            cold_time_seconds=cold_time,
            reachable_methods=cold.reachable_method_count,
            fixpoints_match=(
                warm.reachable_methods == cold.reachable_methods
                and sorted(warm.call_edges()) == sorted(cold.call_edges())),
        ))
        chain = warm.solver_state
        if snapshot_store is not None:
            snapshot_store.store(script.prefix(count), config, chain, program)
            stored += 1
    return script, points, stored, base.steps, base_time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", type=str, default=None,
                        help="restrict to one wide-hierarchy benchmark")
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS,
                        help=f"edit steps per benchmark (default {DEFAULT_STEPS})")
    parser.add_argument("--scheduling", type=str, default=None,
                        help="solver worklist policy (default: fifo)")
    parser.add_argument("--saturation-policy", type=str, default=None,
                        help="saturation sentinel (default: off)")
    parser.add_argument("--threshold", type=int, default=16,
                        help="saturation threshold for a non-off policy")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="engine cache directory (program store + "
                             "snapshot store)")
    parser.add_argument("--bench-dir", type=str, default=None,
                        help="directory for the BENCH_<n>.json trajectory "
                             "(default: benchmarks/trajectories; pass '' "
                             "to skip writing)")
    parser.add_argument("--bench-index", type=int, default=None,
                        help="pin the trajectory number instead of taking "
                             "the next free one")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the tables to this file")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI-sized sweep: {QUICK_SPECS} cheapest specs, "
                             f"{QUICK_STEPS} steps")
    args = parser.parse_args(argv)

    specs = wide_hierarchy_suite()
    if args.benchmark:
        specs = [spec for spec in specs if spec.name == args.benchmark]
        if not specs:
            names = ", ".join(spec.name for spec in wide_hierarchy_suite())
            print(f"run_incremental_study: unknown benchmark "
                  f"{args.benchmark!r}; expected one of: {names}",
                  file=sys.stderr)
            return 2
    elif args.quick:
        specs = sorted(specs, key=estimated_cost)[:QUICK_SPECS]
    steps = QUICK_STEPS if args.quick and args.steps == DEFAULT_STEPS else args.steps

    try:
        config = _study_config(args)
    except ValueError as error:
        print(f"run_incremental_study: {error}", file=sys.stderr)
        return 2

    program_store = snapshot_store = None
    if args.cache_dir:
        cache = ResultCache(args.cache_dir)
        program_store = ProgramStore(cache.directory / "programs",
                                     code_version=cache.code_version)
        snapshot_store = SnapshotStore(cache.directory / "snapshots",
                                       code_version=cache.code_version)

    print(f"incremental study: {len(specs)} benchmarks x {steps} edits "
          f"(config {config.solver_policy.label})...", file=sys.stderr)
    sections: List[str] = []
    trajectory_rows: List[TrajectoryRow] = []
    first_step_percents: List[float] = []
    mismatches = 0
    for spec in specs:
        script, points, stored, base_steps, base_time = run_edit_sequence(
            spec, config, steps, program_store=program_store,
            snapshot_store=snapshot_store)
        summary = summarize_incremental(points)
        trajectory_rows.append(TrajectoryRow(
            spec=spec.name, policy="warm", kernel="object",
            steps=summary["total_warm_steps"],
            joins=sum(point.warm_joins for point in points),
            wall_time_seconds=sum(
                point.warm_time_seconds for point in points)))
        trajectory_rows.append(TrajectoryRow(
            spec=spec.name, policy="cold", kernel="object",
            steps=summary["total_cold_steps"],
            joins=sum(point.cold_joins for point in points),
            wall_time_seconds=sum(
                point.cold_time_seconds for point in points)))
        first_step_percents.append(summary["first_step_warm_percent"])
        section = format_incremental_study(script.name, points)
        section += (
            f"\n\nbase (cold) solve: {base_steps} steps, "
            f"{base_time * 1000:.1f} ms; "
            f"single-method edit warm cost: "
            f"{summary['first_step_warm_percent']:.1f}% of cold; "
            f"sequence total: {summary['total_warm_steps']} warm vs "
            f"{summary['total_cold_steps']} cold steps "
            f"({summary['total_saved_steps']} saved)")
        if stored:
            section += f"; {stored} snapshots stored"
        section += "\n"
        if not summary["all_fixpoints_match"]:
            mismatches += 1
        sections.append(section)
        print(section)

    bench_dir = args.bench_dir
    if bench_dir is None:
        bench_dir = str(Path(__file__).parent / "trajectories")
    if bench_dir and trajectory_rows:
        headline = round(
            sum(first_step_percents) / len(first_step_percents), 3)
        target = write_trajectory(
            bench_dir, study="incremental-warm-resume",
            rows=trajectory_rows,
            headline=("first_step_warm_percent", headline),
            extra={"benchmarks": [spec.name for spec in specs],
                   "steps": steps, "quick": args.quick},
            index=args.bench_index)
        print(f"wrote {target}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(sections))
        print(f"wrote {args.output}", file=sys.stderr)
    if mismatches:
        print(f"run_incremental_study: {mismatches} benchmark(s) had "
              f"warm/cold fixpoint mismatches", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
