"""Table 1, DaCapo block: PTA vs SkipFlow over the 8 DaCapo-like benchmarks.

Regenerates the DaCapo rows of Table 1 (analysis time, total time, reachable
methods, type/null/primitive checks, poly calls, binary size) and checks that
the qualitative shape of the paper's results holds: SkipFlow reduces the
number of reachable methods for every benchmark, ``sunflow`` is the extreme
outlier, and the suite-average reduction is in the double-digit percent range.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, record_comparisons, run_suite

from repro.reporting.table import format_table1, summarize_reductions
from repro.workloads.suites import dacapo_suite


def test_table1_dacapo(benchmark):
    specs = dacapo_suite(scale=BENCH_SCALE)
    comparisons = benchmark.pedantic(run_suite, args=(specs,), rounds=1, iterations=1)
    record_comparisons(benchmark, comparisons)
    print()
    print(format_table1(comparisons, title="Table 1 (DaCapo block)"))

    by_name = {comparison.benchmark: comparison for comparison in comparisons}
    # Every benchmark improves.
    for comparison in comparisons:
        assert comparison.skipflow.reachable_methods < comparison.baseline.reachable_methods
    # Sunflow is the extreme outlier (paper: 52.3%).
    sunflow = by_name["sunflow"].reachable_method_reduction_percent
    assert sunflow > 35.0
    assert sunflow == max(c.reachable_method_reduction_percent for c in comparisons)
    # The suite average reduction has the paper's order of magnitude (13.3%).
    summary = summarize_reductions(comparisons)
    assert 5.0 < summary["avg"] < 30.0
    # Counter metrics and binary size follow the same trend.
    for comparison in comparisons:
        assert comparison.normalized("poly_calls") <= 1.0
        assert comparison.normalized("binary_size") < 1.0
