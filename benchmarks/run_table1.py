"""Standalone runner: regenerate the full Table 1 (all three suites).

Usage::

    python benchmarks/run_table1.py [--scale 3.0] [--suite DaCapo] [--output table1_output.txt]

Prints one Table-1 block per suite (PTA row, SkipFlow row with percentage
deltas) plus the max/min/avg reachable-method reductions the paper quotes in
Section 1, and optionally writes everything to a file.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.reporting.records import BenchmarkComparison, compare_configurations
from repro.reporting.table import format_table1, summarize_reductions
from repro.workloads.suites import all_suites, suite_by_name


def run_suite(specs, verbose: bool = True) -> List[BenchmarkComparison]:
    comparisons = []
    for spec in specs:
        started = time.perf_counter()
        comparison = compare_configurations(spec)
        elapsed = time.perf_counter() - started
        if verbose:
            print(f"  {spec.name:<28} reduction="
                  f"{comparison.reachable_method_reduction_percent:5.1f}% "
                  f"(paper {spec.paper_reduction_percent or 0.0:5.1f}%)  [{elapsed:.1f}s]",
                  file=sys.stderr)
        comparisons.append(comparison)
    return comparisons


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2.0,
                        help="synthetic methods per thousand paper-reported methods")
    parser.add_argument("--suite", type=str, default=None,
                        help="run a single suite (DaCapo, Microservices, Renaissance)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the tables to this file")
    args = parser.parse_args(argv)

    if args.suite:
        suites = {args.suite: suite_by_name(args.suite, scale=args.scale)}
    else:
        suites = all_suites(scale=args.scale)

    sections: List[str] = []
    for suite_name, specs in suites.items():
        print(f"running suite {suite_name} ({len(specs)} benchmarks)...", file=sys.stderr)
        comparisons = run_suite(specs)
        summary = summarize_reductions(comparisons)
        section = format_table1(comparisons, title=f"Table 1 ({suite_name})")
        section += (
            f"\n\nreachable methods reduction: max {summary['max']:.1f}%, "
            f"min {summary['min']:.1f}%, avg {summary['avg']:.1f}%\n"
        )
        sections.append(section)
        print(section)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(sections))
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
