"""Standalone runner: regenerate the full Table 1 (all three suites).

Usage::

    python benchmarks/run_table1.py [--scale 3.0] [--suite DaCapo]
                                    [--jobs 4] [--cache-dir .bench-cache]
                                    [--saturation-threshold N]
                                    [--output table1_output.txt]

Prints one Table-1 block per suite (PTA row, SkipFlow row with percentage
deltas) plus the max/min/avg reachable-method reductions the paper quotes in
Section 1, and optionally writes everything to a file.

The comparisons run through :mod:`repro.engine`: ``--jobs`` fans benchmarks
out to a process pool and ``--cache-dir`` enables the on-disk result cache,
so repeated invocations only re-solve what changed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.core.analysis import AnalysisConfig
from repro.engine import ResultCache, run_specs
from repro.reporting.table import format_table1, summarize_reductions
from repro.workloads.suites import all_suites, suite_by_name


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine flags shared by the standalone benchmark runners."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the benchmark engine")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="directory for the on-disk result cache")
    parser.add_argument("--saturation-threshold", type=int, default=None,
                        help="saturate flows whose type set exceeds this size "
                             "(default: off, exact paper semantics)")


def engine_options(args) -> dict:
    """Translate parsed engine flags into ``run_specs`` keyword arguments."""
    baseline = AnalysisConfig.baseline_pta()
    skipflow = AnalysisConfig.skipflow()
    if args.saturation_threshold is not None:
        baseline = baseline.with_saturation_threshold(args.saturation_threshold)
        skipflow = skipflow.with_saturation_threshold(args.saturation_threshold)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    return {
        "jobs": max(args.jobs, 1),
        "cache": cache,
        "baseline_config": baseline,
        "skipflow_config": skipflow,
    }


def _print_progress(spec, result) -> None:
    origin = "cache" if result.from_cache else f"{result.elapsed_seconds:.1f}s"
    print(f"  {spec.name:<28} reduction="
          f"{result.reachable_method_reduction_percent:5.1f}% "
          f"(paper {spec.paper_reduction_percent or 0.0:5.1f}%)  [{origin}]",
          file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2.0,
                        help="synthetic methods per thousand paper-reported methods")
    parser.add_argument("--suite", type=str, default=None,
                        help="run a single suite (DaCapo, Microservices, Renaissance)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the tables to this file")
    add_engine_arguments(parser)
    args = parser.parse_args(argv)

    if args.suite:
        try:
            suites = {args.suite: suite_by_name(args.suite, scale=args.scale)}
        except KeyError as error:
            print(f"run_table1: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        suites = all_suites(scale=args.scale)
    options = engine_options(args)

    sections: List[str] = []
    for suite_name, specs in suites.items():
        print(f"running suite {suite_name} ({len(specs)} benchmarks)...", file=sys.stderr)
        comparisons = run_specs(specs, progress=_print_progress, **options)
        summary = summarize_reductions(comparisons)
        section = format_table1(comparisons, title=f"Table 1 ({suite_name})")
        section += (
            f"\n\nreachable methods reduction: max {summary['max']:.1f}%, "
            f"min {summary['min']:.1f}%, avg {summary['avg']:.1f}%\n"
        )
        sections.append(section)
        print(section)

    cache = options["cache"]
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses "
              f"({cache.directory})", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(sections))
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
