"""Standalone runner: parallel-kernel cold-solve throughput vs the serial arena.

Usage::

    python benchmarks/run_parallel_study.py [--benchmark fop]
                                            [--cache-dir .bench-cache]
                                            [--partitions N]
                                            [--min-speedup 2.0]
                                            [--bench-dir benchmarks/trajectories]
                                            [--bench-index N]
                                            [--output parallel_study.txt]
                                            [--quick]

The study has two phases, and the identity phase always runs first —
no timing number is reported for a configuration whose results were not
first proven bit-identical.

**Phase 1 — identity.**  On representative specs the study sweeps the full
scheduling x saturation grid and asserts, per cell, that the parallel
kernel's payload (reachable methods, image check counts, call-edge-derived
metrics, per-flow-derived sizes — everything ``repro.engine.runner.
_report_payload`` reports) equals the object kernel's, modulo timing *and*
the solver step/join/transfer counters: the parallel counters are sums over
partition workers and legitimately differ from any serial schedule, so they
are excluded from the identity contract (``saturated_flows`` is not — the
saturated set is schedule-independent and must match exactly).  Cells whose
saturation policy the parallel kernel cannot honour bit-exactly
(``declared-type``) exercise the documented fallback to the serial arena
kernel and must *still* match.

**Phase 2 — timing.**  On the largest specs of the DaCapo-style suite plus
the wide-hierarchy matrices (``wide-huge-512`` tier), the study measures a
cold solve — arena attach plus analysis plus image reports — under the
serial ``arena`` kernel and the ``parallel`` kernel, re-asserting payload
identity per timed cell.  The headline is total serial wall time over total
parallel wall time; ``--min-speedup`` (default 2.0, the tentpole target on
four cores) is enforced only when the machine actually has at least four
cores — on smaller hosts (including single-core CI runners, where thread
mode cannot beat the GIL) the speedup is reported but the gate is skipped
with a loud note, while the identity assertions remain hard failures
everywhere.

Every run is persisted as a versioned ``BENCH_<n>.json`` trajectory under
``--bench-dir`` (:mod:`repro.reporting.trajectory`).  ``--quick`` shrinks
both phases to CI size: one identity spec under a reduced grid, the two
cheapest timed specs, two configurations.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel import (
    available_saturation_policies,
    available_scheduling_policies,
)
from repro.engine import ProgramStore, ResultCache
from repro.engine.runner import _report_payload
from repro.engine.scheduler import estimated_cost
from repro.image.builder import NativeImageBuilder
from repro.reporting.trajectory import TrajectoryRow, write_trajectory
from repro.workloads.suites import dacapo_suite, suite_by_name

DEFAULT_MIN_SPEEDUP = 2.0
QUICK_MIN_SPEEDUP = 1.0
#: The gate needs this many cores to be meaningful (the tentpole target is
#: "at least 2x on four cores"); below it the speedup is report-only.
GATE_MIN_CORES = 4
TIMED_SPECS = 4
QUICK_TIMED_SPECS = 2
QUICK_CONFIGS = 2
SATURATION_THRESHOLD = 8

#: Timing keys excluded from every payload comparison.
_TIMING_KEYS = frozenset({"analysis_time_seconds", "total_time_seconds"})
#: Solver counters additionally excluded: the parallel kernel sums them
#: across partition workers, so they are partitioning-dependent by design.
_COUNTER_KEYS = frozenset({"solver_steps", "solver_joins",
                           "solver_transfers"})


def timing_configs() -> List[Tuple[str, AnalysisConfig]]:
    """The timed policy columns (all bit-exactly supported in parallel)."""
    return [
        ("skipflow", AnalysisConfig.skipflow()),
        ("pta", AnalysisConfig.baseline_pta()),
        ("skipflow+degree", AnalysisConfig.skipflow()
            .with_scheduling("degree")),
        ("skipflow+cw8", AnalysisConfig.skipflow()
            .with_saturation_policy("closed-world", SATURATION_THRESHOLD)),
    ]


def _strip_volatile(payload: Dict[str, object]) -> Dict[str, object]:
    return {key: value for key, value in payload.items()
            if key not in _TIMING_KEYS and key not in _COUNTER_KEYS}


def identity_grid(quick: bool) -> List[Tuple[str, str]]:
    """The (scheduling, saturation) cells phase 1 sweeps."""
    schedulings = list(available_scheduling_policies())
    saturations = list(available_saturation_policies())
    if quick:
        schedulings = schedulings[:2]
        saturations = ["off", "closed-world"]
    return [(scheduling, saturation)
            for scheduling in schedulings for saturation in saturations]


def check_identity(spec, store: ProgramStore, grid: List[Tuple[str, str]],
                   partitions) -> List[str]:
    """Phase 1 on one spec: full-grid payload identity, parallel vs object.

    Returns the labels of diverging cells (empty means bit-identical
    everywhere).  Also asserts per-flow value-state identity against the
    serial arena solver whenever the parallel backend actually ran (the
    payload covers outputs; the state sweep covers every cell of the
    flat tables).
    """
    program = store.load(spec)
    assert program is not None, f"store lost the pickle for {spec.name}"
    attached = store.attach(spec)
    assert attached is not None, f"store lost the arena for {spec.name}"
    failures: List[str] = []
    for scheduling, saturation in grid:
        config = AnalysisConfig.skipflow().with_scheduling(scheduling)
        if saturation != "off":
            config = config.with_saturation_policy(
                saturation, SATURATION_THRESHOLD)
        label = f"{spec.name}[{scheduling}/{saturation}]"
        object_payload = _report_payload(NativeImageBuilder(
            program, config.with_kernel("object"),
            benchmark_name=spec.name).build())
        parallel_config = config.with_kernel("parallel")
        if partitions is not None:
            parallel_config = parallel_config.with_partitions(partitions)
        parallel_payload = _report_payload(NativeImageBuilder(
            attached, parallel_config, benchmark_name=spec.name).build())
        if (_strip_volatile(object_payload)
                != _strip_volatile(parallel_payload)):
            failures.append(label)
            continue
        # Per-flow state identity: arena solver vs a direct parallel solve.
        arena_result = SkipFlowAnalysis(
            attached, config.with_kernel("arena")).run()
        parallel_result = SkipFlowAnalysis(attached, parallel_config).run()
        serial = arena_result.kernel_backend
        merged = parallel_result.kernel_backend
        if serial is None or merged is None:  # pragma: no cover — fallback
            continue
        states_match = (
            all(merged._st[i] == serial._st[i]
                for i in range(len(serial._st)))
            and all(merged._inp[i] == serial._inp[i]
                    for i in range(len(serial._inp)))
            and bytes(merged._enabled) == bytes(serial._enabled)
            and bytes(merged._saturated) == bytes(serial._saturated))
        if not states_match:
            failures.append(label + " (per-flow states)")
    return failures


def run_timed_cell(spec, label: str, config: AnalysisConfig,
                   store: ProgramStore, partitions):
    """Phase 2 on one (spec, policy) cell: serial arena vs parallel."""
    store.load_or_build(spec)  # Warm the disk blob; not part of either half.

    started = time.perf_counter()
    attached = store.attach(spec)
    assert attached is not None, f"store lost the arena for {spec.name}"
    serial_payload = _report_payload(NativeImageBuilder(
        attached, config.with_kernel("arena"),
        benchmark_name=spec.name).build())
    serial_total = time.perf_counter() - started

    parallel_config = config.with_kernel("parallel")
    if partitions is not None:
        parallel_config = parallel_config.with_partitions(partitions)
    started = time.perf_counter()
    attached = store.attach(spec)
    parallel_payload = _report_payload(NativeImageBuilder(
        attached, parallel_config, benchmark_name=spec.name).build())
    parallel_total = time.perf_counter() - started

    rows = [
        TrajectoryRow(spec=spec.name, policy=label, kernel="arena",
                      steps=int(serial_payload["solver_steps"]),
                      joins=int(serial_payload["solver_joins"]),
                      wall_time_seconds=serial_total),
        TrajectoryRow(spec=spec.name, policy=label, kernel="parallel",
                      steps=int(parallel_payload["solver_steps"]),
                      joins=int(parallel_payload["solver_joins"]),
                      wall_time_seconds=parallel_total),
    ]
    match = (_strip_volatile(serial_payload)
             == _strip_volatile(parallel_payload))
    return rows, serial_total, parallel_total, match


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", type=str, default=None,
                        help="restrict phase 2 to one benchmark (searched "
                             "in the DaCapo-style and wide-hierarchy "
                             "suites)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="program-store directory (default: a fresh "
                             "temporary directory)")
    parser.add_argument("--partitions", type=int, default=None,
                        help="explicit parallel-kernel partition count "
                             "(default: the kernel's auto policy)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help=f"fail below this aggregate speedup when the "
                             f"machine has >= {GATE_MIN_CORES} cores "
                             f"(default {DEFAULT_MIN_SPEEDUP}, or "
                             f"{QUICK_MIN_SPEEDUP} with --quick)")
    parser.add_argument("--bench-dir", type=str, default=None,
                        help="directory for the BENCH_<n>.json trajectory "
                             "(default: benchmarks/trajectories; pass '' "
                             "to skip writing)")
    parser.add_argument("--bench-index", type=int, default=None,
                        help="pin the trajectory number instead of taking "
                             "the next free one")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the study text to this file")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized sweep: reduced identity grid, "
                             f"{QUICK_TIMED_SPECS} cheapest timed specs, "
                             f"{QUICK_CONFIGS} configurations")
    args = parser.parse_args(argv)

    specs = list(dacapo_suite()) + list(suite_by_name("WideHierarchy"))
    if args.benchmark:
        specs = [spec for spec in specs if spec.name == args.benchmark]
        if not specs:
            names = ", ".join(spec.name for spec in dacapo_suite()
                              + suite_by_name("WideHierarchy"))
            print(f"run_parallel_study: unknown benchmark "
                  f"{args.benchmark!r}; expected one of: {names}",
                  file=sys.stderr)
            return 2
        timed_specs = specs
    elif args.quick:
        timed_specs = sorted(specs, key=estimated_cost)[:QUICK_TIMED_SPECS]
    else:
        # The tentpole target is the *largest* tier: take the most
        # expensive specs, which by construction include the huge wide
        # matrices.
        timed_specs = sorted(specs, key=estimated_cost)[-TIMED_SPECS:]
    identity_specs = sorted(specs, key=estimated_cost)[:1 if args.quick
                                                       else 2]
    configs = timing_configs()
    if args.quick:
        configs = configs[:QUICK_CONFIGS]
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = QUICK_MIN_SPEEDUP if args.quick else DEFAULT_MIN_SPEEDUP
    cores = os.cpu_count() or 1
    gate_enforced = cores >= GATE_MIN_CORES

    if args.cache_dir:
        cache = ResultCache(args.cache_dir)
        store = ProgramStore(cache.directory / "programs",
                             code_version=cache.code_version)
        scratch = None
    else:
        scratch = tempfile.TemporaryDirectory(prefix="repro-parallel-study-")
        store = ProgramStore(scratch.name)

    grid = identity_grid(args.quick)
    print(f"parallel study phase 1: {len(identity_specs)} spec(s) x "
          f"{len(grid)} grid cells, parallel vs object...", file=sys.stderr)
    failures: List[str] = []
    for spec in identity_specs:
        store.load_or_build(spec)
        failures.extend(check_identity(spec, store, grid, args.partitions))
    if failures:
        print("run_parallel_study: bit-identity FAILED before timing in "
              f"{len(failures)} cell(s): {', '.join(failures)}",
              file=sys.stderr)
        if scratch is not None:
            scratch.cleanup()
        return 1

    print(f"parallel study phase 2: {len(timed_specs)} benchmarks x "
          f"{len(configs)} configurations, serial arena vs parallel "
          f"({cores} core(s))...", file=sys.stderr)
    rows: List[TrajectoryRow] = []
    lines: List[str] = []
    serial_sum = parallel_sum = 0.0
    mismatches = 0
    header = (f"{'benchmark':<18} {'policy':<16} {'arena':>9} "
              f"{'parallel':>9} {'speedup':>8}  identical")
    lines.append(header)
    lines.append("-" * len(header))
    for spec in timed_specs:
        for label, config in configs:
            cell_rows, serial_total, parallel_total, match = run_timed_cell(
                spec, label, config, store, args.partitions)
            rows.extend(cell_rows)
            serial_sum += serial_total
            parallel_sum += parallel_total
            if not match:
                mismatches += 1
            lines.append(
                f"{spec.name:<18} {label:<16} {serial_total:>8.3f}s "
                f"{parallel_total:>8.3f}s "
                f"{serial_total / parallel_total:>7.2f}x  "
                f"{'yes' if match else 'NO'}")

    speedup = serial_sum / parallel_sum if parallel_sum else float("inf")
    lines.append("-" * len(header))
    lines.append(
        f"total: serial arena {serial_sum:.3f}s vs parallel "
        f"{parallel_sum:.3f}s -> {speedup:.2f}x cold-solve speedup")
    lines.append(
        f"identity: {len(identity_specs)} spec(s) x {len(grid)} "
        f"scheduling x saturation cells bit-identical before timing")
    if not gate_enforced:
        lines.append(
            f"NOTE: {cores} core(s) < {GATE_MIN_CORES}; the "
            f"{min_speedup:.1f}x speedup gate is report-only on this host")
    text = "\n".join(lines)
    print(text)

    bench_dir = args.bench_dir
    if bench_dir is None:
        bench_dir = str(Path(__file__).parent / "trajectories")
    if bench_dir:
        target = write_trajectory(
            bench_dir, study="parallel-cold-solve", rows=rows,
            headline=("parallel_cold_solve_speedup_x", round(speedup, 3)),
            extra={"benchmarks": [spec.name for spec in timed_specs],
                   "policies": [label for label, _ in configs],
                   "identity_cells": len(identity_specs) * len(grid),
                   "cores": cores, "partitions": args.partitions,
                   "gate_enforced": gate_enforced, "quick": args.quick},
            index=args.bench_index)
        print(f"wrote {target}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if scratch is not None:
        scratch.cleanup()

    if mismatches:
        print(f"run_parallel_study: {mismatches} timed cell(s) had payload "
              f"divergence between the kernels", file=sys.stderr)
        return 1
    if gate_enforced and speedup < min_speedup:
        print(f"run_parallel_study: speedup {speedup:.2f}x is below the "
              f"--min-speedup gate {min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
