"""Table 1, Renaissance block: PTA vs SkipFlow over the 18 Renaissance benchmarks.

The paper reports reductions between 3.7% (reactors) and 17.2% (chi-square)
with an 8.4% average; the Spark-based benchmarks (als, chi-square, dec-tree,
log-regression) are the biggest winners.  The assertions check those ordering
relations on the synthetic suite.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, record_comparisons, run_suite

from repro.reporting.table import format_table1, summarize_reductions
from repro.workloads.suites import renaissance_suite

_SPARK_BENCHMARKS = ("als", "chi-square", "dec-tree", "log-regression")


def test_table1_renaissance(benchmark):
    specs = renaissance_suite(scale=BENCH_SCALE)
    comparisons = benchmark.pedantic(run_suite, args=(specs,), rounds=1, iterations=1)
    record_comparisons(benchmark, comparisons)
    print()
    print(format_table1(comparisons, title="Table 1 (Renaissance block)"))

    for comparison in comparisons:
        assert comparison.skipflow.reachable_methods < comparison.baseline.reachable_methods

    summary = summarize_reductions(comparisons)
    # Paper: max 17.2%, min 3.7%, avg 8.4%.
    assert 4.0 < summary["avg"] < 16.0

    by_name = {comparison.benchmark: comparison for comparison in comparisons}
    spark_avg = sum(
        by_name[name].reachable_method_reduction_percent for name in _SPARK_BENCHMARKS
    ) / len(_SPARK_BENCHMARKS)
    others = [c for c in comparisons if c.benchmark not in _SPARK_BENCHMARKS]
    others_avg = sum(c.reachable_method_reduction_percent for c in others) / len(others)
    assert spark_avg > others_avg
