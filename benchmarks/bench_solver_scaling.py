"""Analysis-time scaling: solver throughput as the application grows.

The paper's pitch is that SkipFlow stays "as lightweight and scalable as
possible": its analysis time tracks the baseline's even though it does more
work per flow, because it analyzes fewer methods.  This benchmark measures
both configurations on applications of increasing size and reports methods
analyzed per second.
"""

from __future__ import annotations

import time

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.workloads.generator import generate_benchmark, spec_from_reduction

_SIZES = (100, 300, 600)


def _build_program(size: int):
    spec = spec_from_reduction(
        name=f"scaling-{size}", suite="scaling",
        total_methods=size, reduction_percent=10.0,
    )
    return generate_benchmark(spec)


@pytest.mark.parametrize("size", _SIZES)
@pytest.mark.parametrize("config_name", ["PTA", "SkipFlow"])
def test_solver_scaling(benchmark, size, config_name):
    program = _build_program(size)
    config = (AnalysisConfig.baseline_pta() if config_name == "PTA"
              else AnalysisConfig.skipflow())

    def run_analysis():
        return SkipFlowAnalysis(program, config).run()

    result = benchmark.pedantic(run_analysis, rounds=3, iterations=1)
    methods_per_second = (result.reachable_method_count
                          / max(result.analysis_time_seconds, 1e-9))
    benchmark.extra_info["reachable_methods"] = result.reachable_method_count
    benchmark.extra_info["methods_per_second"] = round(methods_per_second)
    benchmark.extra_info["solver_steps"] = result.steps
    assert result.reachable_method_count > 0
