"""Figure 9: all metrics normalized to the PTA baseline, one panel per suite.

The figure's message is that every metric lands at or below 1.0 for SkipFlow
(lower is better), with the exception of analysis time where the results are
inconclusive but close to 1.0 on average.  The assertions check exactly that.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, run_suite

from repro.reporting.figures import figure9_series, format_figure9, suite_averages
from repro.workloads.suites import dacapo_suite, microservices_suite, renaissance_suite

_SUITES = {
    "Renaissance": renaissance_suite,
    "DaCapo": dacapo_suite,
    "Microservices": microservices_suite,
}

#: Metrics that must improve (or stay equal) for every single benchmark.
_MONOTONE_METRICS = (
    "reachable_methods", "type_checks", "null_checks",
    "prim_checks", "poly_calls", "binary_size",
)


def _run_all_suites():
    return {
        name: run_suite(factory(scale=BENCH_SCALE))
        for name, factory in _SUITES.items()
    }


def test_figure9_normalized_metrics(benchmark):
    per_suite = benchmark.pedantic(_run_all_suites, rounds=1, iterations=1)
    all_method_reductions = []
    for suite_name, comparisons in per_suite.items():
        print()
        print(format_figure9(comparisons, suite_name))
        series = figure9_series(comparisons)
        for bench_name, metrics in series.items():
            for metric in _MONOTONE_METRICS:
                assert metrics[metric] <= 1.0, (
                    f"{suite_name}/{bench_name}: {metric} regressed ({metrics[metric]:.2f})"
                )
        averages = suite_averages(comparisons)
        all_method_reductions.append(1.0 - averages["reachable_methods"])
    # Across the three suites the average reachable-method reduction is ~9%.
    overall = sum(all_method_reductions) / len(all_method_reductions)
    assert 0.04 < overall < 0.25
