"""Table 1, Microservices block: PTA vs SkipFlow over the 9 microservice apps.

The paper reports reductions between 3.3% (Micronaut Helloworld) and 9.2%
(Quarkus Tika) with a 6.3% average; the assertions check that the synthetic
suite reproduces that band and that the smallest/largest benchmarks behave the
same way relative to each other.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, record_comparisons, run_suite

from repro.reporting.table import format_table1, summarize_reductions
from repro.workloads.suites import microservices_suite


def test_table1_microservices(benchmark):
    specs = microservices_suite(scale=BENCH_SCALE)
    comparisons = benchmark.pedantic(run_suite, args=(specs,), rounds=1, iterations=1)
    record_comparisons(benchmark, comparisons)
    print()
    print(format_table1(comparisons, title="Table 1 (Microservices block)"))

    for comparison in comparisons:
        assert comparison.skipflow.reachable_methods < comparison.baseline.reachable_methods

    summary = summarize_reductions(comparisons)
    # Paper: max 9.2%, min 3.3%, avg 6.3%.
    assert 3.0 < summary["avg"] < 12.0
    assert summary["max"] < 20.0

    by_name = {comparison.benchmark: comparison for comparison in comparisons}
    tika = by_name["quarkus-tika"].reachable_method_reduction_percent
    helloworld = by_name["micronaut-helloworld"].reachable_method_reduction_percent
    assert tika > helloworld
