"""Check smoke: post-solve audits over the extended suites, with an overhead gate.

Usage::

    python benchmarks/run_check_smoke.py [--scale 3.0] [--specs-per-suite 2]
                                         [--suite DaCapo] [--benchmark fop]
                                         [--schedulings fifo,lifo,degree]
                                         [--saturations off,declared-type]
                                         [--threshold 64]
                                         [--max-overhead-percent 10.0]

For every sampled benchmark of the extended suites (Table 1's three paper
suites plus ``WideHierarchy``), the smoke

* runs the IR lint passes once per program and requires them error-free
  (warnings are advisory and only counted);
* solves every config-backed analyzer (``pta``, the two ablations,
  ``skipflow``) under every scheduling x saturation combination and runs
  the post-solve audits (:func:`repro.checks.audit_state`) on each solver
  state, requiring zero findings;
* round-trips one snapshot per benchmark through
  ``SolverState.to_bytes``/``from_bytes`` with the full audit (the
  ``snapshot`` integrity check included) — priced separately, because the
  serialization probe is not part of the per-solve audit surface;
* gates the **aggregate** audit overhead: total fast-audit wall-time
  divided by total cold-solve wall-time across the whole matrix must stay
  under ``--max-overhead-percent`` (default 10%).  The ratio is aggregate
  rather than per-combo on purpose — every combination is audited exactly
  once, so the aggregate is the real price of auditing the matrix, and it
  is not distorted by tiny solves where fixed costs dominate.

``--specs-per-suite`` samples the N cheapest benchmarks of each suite
(default 2, a CI-sized matrix); ``--specs-per-suite 0`` keeps every spec.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Tuple

from repro.api.registry import config_backed_analyzers, get_analyzer
from repro.checks import audit_state, has_errors, lint_program
from repro.core.analysis import SkipFlowAnalysis
from repro.core.kernel import (
    SolverPolicy,
    available_saturation_policies,
    available_scheduling_policies,
)
from repro.engine.scheduler import estimated_cost
from repro.workloads.generator import generate_benchmark
from repro.workloads.suites import extended_suites

DEFAULT_SCHEDULINGS = ("fifo", "lifo", "degree")
DEFAULT_SATURATIONS = ("off", "declared-type")
DEFAULT_THRESHOLD = 64
DEFAULT_SPECS_PER_SUITE = 2
DEFAULT_MAX_OVERHEAD = 10.0


def _parse_names(text: str, kind: str, available) -> List[str]:
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise ValueError(f"no {kind} policies given")
    for name in names:
        if name not in available:
            raise ValueError(f"unknown {kind} policy {name!r}; available: "
                             f"{', '.join(available)}")
    return names


def _sample_specs(args) -> List:
    suites = extended_suites(args.scale)
    if args.suite:
        matches = {name: specs for name, specs in suites.items()
                   if name.lower() == args.suite.lower()}
        if not matches:
            raise ValueError(f"unknown suite {args.suite!r}; expected one "
                             f"of {sorted(suites)}")
        suites = matches
    specs = []
    for _, suite_specs in sorted(suites.items()):
        ranked = sorted(suite_specs, key=estimated_cost)
        if args.specs_per_suite > 0:
            ranked = ranked[:args.specs_per_suite]
        specs.extend(ranked)
    if args.benchmark:
        specs = [spec for spec in specs if spec.name == args.benchmark]
        if not specs:
            raise ValueError(
                f"benchmark {args.benchmark!r} is not in the sampled set; "
                f"drop --specs-per-suite or pick another name")
    return specs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=3.0,
                        help="workload scale factor (default: 3.0)")
    parser.add_argument("--specs-per-suite", type=int,
                        default=DEFAULT_SPECS_PER_SUITE,
                        help="cheapest N benchmarks per suite; 0 = all "
                             f"(default: {DEFAULT_SPECS_PER_SUITE})")
    parser.add_argument("--suite", type=str, default=None,
                        help="restrict to one suite (case-insensitive)")
    parser.add_argument("--benchmark", type=str, default=None,
                        help="restrict to one benchmark of the sampled set")
    parser.add_argument("--schedulings", type=str,
                        default=",".join(DEFAULT_SCHEDULINGS))
    parser.add_argument("--saturations", type=str,
                        default=",".join(DEFAULT_SATURATIONS))
    parser.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                        help="saturation threshold for non-off policies "
                             f"(default: {DEFAULT_THRESHOLD})")
    parser.add_argument("--max-overhead-percent", type=float,
                        default=DEFAULT_MAX_OVERHEAD,
                        help="aggregate audit/solve wall-time gate "
                             f"(default: {DEFAULT_MAX_OVERHEAD})")
    args = parser.parse_args(argv)

    try:
        schedulings = _parse_names(args.schedulings, "scheduling",
                                   available_scheduling_policies())
        saturations = _parse_names(args.saturations, "saturation",
                                   available_saturation_policies())
        if args.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {args.threshold}")
        specs = _sample_specs(args)
    except ValueError as error:
        print(f"run_check_smoke: {error}", file=sys.stderr)
        return 2

    analyzers = config_backed_analyzers()
    policies: List[Tuple[str, SolverPolicy]] = []
    for saturation in saturations:
        for scheduling in schedulings:
            policy = SolverPolicy(
                scheduling=scheduling, saturation=saturation,
                saturation_threshold=(None if saturation == "off"
                                      else args.threshold))
            policies.append((policy.label, policy))

    combos = len(specs) * len(analyzers) * len(policies)
    print(f"check smoke: {len(specs)} benchmarks x {len(analyzers)} "
          f"analyzers x {len(policies)} policies = {combos} audited solves "
          f"(scale {args.scale})", file=sys.stderr)

    failures: List[str] = []
    lint_warnings = 0
    solve_seconds = 0.0
    audit_seconds = 0.0
    snapshot_seconds = 0.0

    for spec in specs:
        program = generate_benchmark(spec)

        diagnostics = lint_program(program)
        lint_warnings += len(diagnostics)
        if has_errors(diagnostics):
            errors = [diag for diag in diagnostics
                      if diag.severity.label == "error"]
            failures.append(f"{spec.name}: lint reported "
                            f"{len(errors)} error(s): {errors[0].render()}")

        snapshot_state = None
        for analyzer_name in analyzers:
            analyzer = get_analyzer(analyzer_name)
            for label, policy in policies:
                config = analyzer.config(policy=policy)
                started = time.perf_counter()
                result = SkipFlowAnalysis(program, config).run()
                solve_seconds += time.perf_counter() - started

                started = time.perf_counter()
                findings = audit_state(result.solver_state, program,
                                       snapshot=False)
                audit_seconds += time.perf_counter() - started
                if findings:
                    failures.append(
                        f"{spec.name} [{analyzer_name} {label}]: audit "
                        f"reported {len(findings)} finding(s), first: "
                        f"{findings[0].render()}")
                if analyzer_name == "skipflow" and label == "fifo/off":
                    snapshot_state = result.solver_state

        # One serialization integrity probe per benchmark: the full audit
        # on the default skipflow state, snapshot round-trip included.
        if snapshot_state is not None:
            started = time.perf_counter()
            findings = audit_state(snapshot_state, program)
            snapshot_seconds += time.perf_counter() - started
            if findings:
                failures.append(
                    f"{spec.name}: full audit (snapshot round-trip) "
                    f"reported {len(findings)} finding(s), first: "
                    f"{findings[0].render()}")
        print(f"  {spec.name}: audited", file=sys.stderr)

    overhead = (100.0 * audit_seconds / solve_seconds
                if solve_seconds > 0 else 0.0)
    print(f"check smoke: {combos} solves in {solve_seconds:.2f}s, fast "
          f"audits in {audit_seconds:.2f}s (aggregate overhead "
          f"{overhead:.1f}%, gate {args.max_overhead_percent:.1f}%), "
          f"snapshot probes in {snapshot_seconds:.2f}s, "
          f"{lint_warnings} advisory lint finding(s)")
    if overhead >= args.max_overhead_percent:
        failures.append(
            f"aggregate audit overhead {overhead:.1f}% breaches the "
            f"{args.max_overhead_percent:.1f}% gate")

    if failures:
        for failure in failures:
            print(f"CHECK SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check smoke ok: {combos} combos audited clean across "
          f"{len(specs)} extended-suite benchmarks, overhead "
          f"{overhead:.1f}% < {args.max_overhead_percent:.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
