"""Solver-steps regression gate for CI.

Re-runs the ``bench_solver_scaling`` specs (sizes 100/300/600, PTA and
SkipFlow) and compares ``solver.steps`` — the machine-independent cost proxy —
against the checked-in baseline.  Fails when any measurement exceeds its
baseline by more than the tolerance (default 10%), which catches accidental
algorithmic regressions (extra worklist churn, lost dedup) that wall-clock
timing on shared CI runners cannot.

Benchmark generation and the solver are fully deterministic, so on an
unchanged algorithm the measured steps are *exactly* the baseline.  After an
intentional solver change, regenerate with::

    python benchmarks/check_solver_regression.py --update

``--kernel arena`` runs the same gate through the arena propagation kernel
against the *same* baseline — the kernels are bit-identical by contract, so
one baseline file serves both and any divergence fails loudly here.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.workloads.generator import generate_benchmark, spec_from_reduction

BASELINE_PATH = Path(__file__).parent / "baselines" / "solver_steps.json"

#: Mirrors ``bench_solver_scaling._SIZES``.
SIZES = (100, 300, 600)


def measure(kernel: str = "object") -> dict:
    measurements = {}
    for size in SIZES:
        spec = spec_from_reduction(
            name=f"scaling-{size}", suite="scaling",
            total_methods=size, reduction_percent=10.0,
        )
        for config in (AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow()):
            config = config.with_kernel(kernel)
            result = SkipFlowAnalysis(generate_benchmark(spec), config).run()
            # Baseline keys deliberately omit the kernel: both kernels must
            # reproduce the same counts, so they share one baseline file.
            measurements[f"{spec.name}/{config.name}"] = result.steps
    return measurements


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional increase over the baseline")
    parser.add_argument("--kernel", choices=("object", "arena"),
                        default="object",
                        help="propagation kernel to gate (same baseline)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current measurement")
    args = parser.parse_args(argv)

    measurements = measure(args.kernel)
    if args.update:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(measurements, indent=1, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for key, steps in sorted(measurements.items()):
        expected = baseline.get(key)
        if expected is None:
            failures.append(f"{key}: no baseline entry (run with --update)")
            continue
        limit = expected * (1.0 + args.tolerance)
        marker = "OK"
        if steps > limit:
            marker = "FAIL"
            failures.append(
                f"{key}: {steps} steps exceeds baseline {expected} "
                f"by more than {args.tolerance:.0%}")
        print(f"  {key:<24} steps={steps:<8} baseline={expected:<8} [{marker}]")

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("solver steps within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
