"""Solver-steps regression gate for CI.

Re-runs the ``bench_solver_scaling`` specs (sizes 100/300/600, PTA and
SkipFlow) and compares ``solver.steps`` — the machine-independent cost proxy —
against the checked-in baseline.  Fails when any measurement exceeds its
baseline by more than the tolerance (default 10%), which catches accidental
algorithmic regressions (extra worklist churn, lost dedup) that wall-clock
timing on shared CI runners cannot.

Benchmark generation and the solver are fully deterministic, so on an
unchanged algorithm the measured steps are *exactly* the baseline.  After an
intentional solver change, regenerate with::

    python benchmarks/check_solver_regression.py --update

``--kernel arena`` runs the same gate through the arena propagation kernel
against the *same* baseline — the kernels are bit-identical by contract, so
one baseline file serves both and any divergence fails loudly here.  The
``parallel`` kernel is deliberately *not* a choice: its step counter is a
sum over partition workers and partitioning-dependent by design, so the
exact-steps contract cannot cover it (the fuzz oracle and the parallel
study gate its outputs instead).

``--wall-time-dir DIR`` adds a second, tolerance-based check over the
``BENCH_<n>.json`` trajectory history a study wrote under ``DIR``
(:mod:`repro.reporting.trajectory`): for every (study, spec, policy,
kernel) cell present in both the newest run and at least one earlier run,
the newest wall time must stay within ``--wall-tolerance`` (default 1.5x —
a wide guard band, because shared CI runners are noisy) of the *fastest*
earlier recording.  With fewer than two runs of a study in the directory
the check passes vacuously with a note.  ``--wall-time-only`` skips the
steps gate for a pure trajectory audit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.reporting.trajectory import load_history
from repro.workloads.generator import generate_benchmark, spec_from_reduction

BASELINE_PATH = Path(__file__).parent / "baselines" / "solver_steps.json"

#: Mirrors ``bench_solver_scaling._SIZES``.
SIZES = (100, 300, 600)

#: Default wall-time guard band: newest <= 1.5x the fastest earlier run.
DEFAULT_WALL_TOLERANCE = 1.5


def measure(kernel: str = "object") -> dict:
    measurements = {}
    for size in SIZES:
        spec = spec_from_reduction(
            name=f"scaling-{size}", suite="scaling",
            total_methods=size, reduction_percent=10.0,
        )
        for config in (AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow()):
            config = config.with_kernel(kernel)
            result = SkipFlowAnalysis(generate_benchmark(spec), config).run()
            # Baseline keys deliberately omit the kernel: both kernels must
            # reproduce the same counts, so they share one baseline file.
            measurements[f"{spec.name}/{config.name}"] = result.steps
    return measurements


def check_wall_times(directory, tolerance: float) -> list:
    """Audit the trajectory history under ``directory``.

    Returns the failure messages (empty = pass).  Prints one line per
    audited cell; cells without at least one earlier recording — and
    studies with fewer than two recorded runs — pass vacuously with a
    note, so the gate is safe to wire into CI before any history exists.
    """
    history = load_history(directory)
    by_study: dict = {}
    for index, payload in history:
        by_study.setdefault(str(payload.get("study")), []).append(
            (index, payload))

    failures = []
    audited = 0
    for study in sorted(by_study):
        runs = sorted(by_study[study])
        if len(runs) < 2:
            print(f"  {study}: only {len(runs)} recorded run(s); "
                  f"wall-time check vacuously passes")
            continue
        newest_index, newest = runs[-1]
        earlier = runs[:-1]
        baselines: dict = {}
        for _, payload in earlier:
            for row in payload["rows"]:
                key = (row["spec"], row["policy"], row["kernel"])
                seconds = float(row["wall_time_seconds"])
                if key not in baselines or seconds < baselines[key]:
                    baselines[key] = seconds
        for row in newest["rows"]:
            key = (row["spec"], row["policy"], row["kernel"])
            baseline = baselines.get(key)
            if baseline is None:
                continue
            audited += 1
            seconds = float(row["wall_time_seconds"])
            limit = baseline * tolerance
            marker = "OK"
            if seconds > limit:
                marker = "FAIL"
                failures.append(
                    f"{study} {'/'.join(key)}: {seconds * 1000:.1f} ms "
                    f"exceeds {tolerance:.2f}x the fastest earlier run "
                    f"({baseline * 1000:.1f} ms)")
            print(f"  {study} {'/'.join(key):<40} "
                  f"{seconds * 1000:>8.1f} ms vs best {baseline * 1000:>8.1f} "
                  f"ms [{marker}] (run {newest_index})")
    if audited:
        print(f"wall times: {audited} cell(s) audited against history")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional increase over the baseline")
    parser.add_argument("--kernel", choices=("object", "arena"),
                        default="object",
                        help="propagation kernel to gate (same baseline)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current measurement")
    parser.add_argument("--wall-time-dir", type=str, default=None,
                        help="also audit the BENCH_<n>.json trajectory "
                             "history under this directory")
    parser.add_argument("--wall-tolerance", type=float,
                        default=DEFAULT_WALL_TOLERANCE,
                        help="wall-time guard band over the fastest earlier "
                             f"run (default {DEFAULT_WALL_TOLERANCE})")
    parser.add_argument("--wall-time-only", action="store_true",
                        help="skip the solver-steps gate (requires "
                             "--wall-time-dir)")
    args = parser.parse_args(argv)

    if args.wall_time_only and not args.wall_time_dir:
        parser.error("--wall-time-only requires --wall-time-dir")

    if args.wall_time_only:
        failures = check_wall_times(args.wall_time_dir, args.wall_tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("wall times within tolerance")
        return 0

    measurements = measure(args.kernel)
    if args.update:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(measurements, indent=1, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for key, steps in sorted(measurements.items()):
        expected = baseline.get(key)
        if expected is None:
            failures.append(f"{key}: no baseline entry (run with --update)")
            continue
        limit = expected * (1.0 + args.tolerance)
        marker = "OK"
        if steps > limit:
            marker = "FAIL"
            failures.append(
                f"{key}: {steps} steps exceeds baseline {expected} "
                f"by more than {args.tolerance:.0%}")
        print(f"  {key:<24} steps={steps:<8} baseline={expected:<8} [{marker}]")

    if args.wall_time_dir:
        failures.extend(
            check_wall_times(args.wall_time_dir, args.wall_tolerance))

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("solver steps within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
