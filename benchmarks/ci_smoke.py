"""CI smoke test for the benchmark engine.

Runs a couple of small specs through :func:`repro.engine.run_specs` on a
process pool, then repeats the run against the same cache directory and
asserts that every result is served from the cache — two hits per spec, one
per configuration half — with identical numbers.  A third run under a
different SkipFlow configuration must reuse the cached baseline halves and
the program-store IR blobs while recomputing only the SkipFlow side.
A 3-way matrix (pta, skipflow, skipflow+saturation) over the same specs
must be assembled *entirely* from the halves those earlier runs cached —
every shared half solved exactly once across the whole session — with
numbers identical to the pairwise runs.  A solver-kernel *policy
matrix* (fifo/lifo/degree scheduling × off/declared-type saturation) checks
the policy-aware cache keying: every policy half is keyed distinctly, the
``fifo``/``off`` column is served from the halves the first run cached (it
*is* the default SkipFlow config), a repeat run hits every policy half, and
all policies agree on the fixed point.  Finally the *incremental* phase
covers warm re-analysis: an additive edit resumed from the base fixpoint
must land on the cold fixpoint for strictly fewer steps, the resumed state
must round-trip through the snapshot store, and a second pass must serve
the snapshot from the store (a hit) and resume it to the same fixpoint.
Exits non-zero (with a message) on any violation, so it can gate CI::

    python benchmarks/ci_smoke.py --jobs 2 --cache-dir .bench-cache
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.engine import ResultCache, SnapshotStore, run_config_matrix, run_specs
from repro.workloads.edits import build_edit_delta, default_edit_script
from repro.workloads.generator import generate_benchmark, spec_from_reduction

#: Configuration halves per comparison (baseline + SkipFlow).
HALVES = 2

#: The solver-kernel policy grid of the policy-matrix phase.  The threshold
#: is far above any type-set width the smoke specs produce, so saturation
#: never fires and every column must land on the identical fixed point.
POLICY_SCHEDULINGS = ("fifo", "lifo", "degree")
POLICY_SATURATIONS = (("off", None), ("declared-type", 64))


def _policy_grid():
    """(label, config) pairs; ``fifo/off`` is the default SkipFlow config."""
    grid = []
    for saturation, threshold in POLICY_SATURATIONS:
        for scheduling in POLICY_SCHEDULINGS:
            config = AnalysisConfig.skipflow().with_scheduling(scheduling)
            if threshold is not None:
                config = config.with_saturation_policy(saturation, threshold)
            grid.append((f"{scheduling}/{saturation}", config))
    return grid


def _smoke_specs():
    return [
        spec_from_reduction(name="smoke-small", suite="smoke",
                            total_methods=80, reduction_percent=12.0),
        spec_from_reduction(name="smoke-medium", suite="smoke",
                            total_methods=160, reduction_percent=8.0),
    ]


def _incremental_phase(cache_dir: str) -> list:
    """Warm re-analysis smoke: edit → resume beats cold, snapshots round-trip.

    Returns a list of failure messages (empty = phase green).  Uses the
    engine's snapshot store under the shared cache directory, so the GC
    smoke downstream also exercises snapshot files.
    """
    failures = []
    spec = _smoke_specs()[0]
    config = AnalysisConfig.skipflow()
    script = default_edit_script(spec, steps=1)
    program = generate_benchmark(spec)

    snapshots = SnapshotStore(Path(cache_dir) / "snapshots")
    # Drop any entries a previous run against a reused --cache-dir left, so
    # the hit/miss assertions below stay deterministic.
    for prefix in (script.prefix(0), script.prefix(1)):
        path = snapshots.path_for(prefix, config)
        if path.exists():
            path.unlink()

    cold_base = SkipFlowAnalysis(program, config).run()
    chain = cold_base.solver_state
    snapshots.store(script.prefix(0), config, chain, program)

    delta = build_edit_delta(spec, script.steps[0])
    delta.apply_to(program, require_monotone=True)
    before = chain.counters()
    warm = SkipFlowAnalysis(program, config, state=chain).run()
    warm_steps = warm.steps - before["steps"]
    cold = SkipFlowAnalysis(program, config).run()
    if warm.reachable_methods != cold.reachable_methods or \
            sorted(warm.call_edges()) != sorted(cold.call_edges()):
        failures.append(
            f"{spec.name}: resumed fixpoint differs from the cold fixpoint "
            f"after a monotone edit")
    if warm_steps >= cold.steps:
        failures.append(
            f"{spec.name}: warm resume was not cheaper than the cold solve "
            f"({warm_steps} >= {cold.steps} steps)")
    snapshots.store(script.prefix(1), config, warm.solver_state, program)

    # Second pass: the stored snapshot must be a hit and resume to the
    # identical fixpoint without extra solver work.
    reread = SnapshotStore(Path(cache_dir) / "snapshots")
    restored = reread.load(script.prefix(1), config)
    if restored is None or reread.hits != 1 or reread.misses != 0:
        failures.append(
            f"{spec.name}: snapshot store did not serve the stored state "
            f"({reread.hits} hits / {reread.misses} misses)")
        return failures
    resumed_before = restored.counters()
    resumed = SkipFlowAnalysis(program, config, state=restored).run()
    if resumed.steps - resumed_before["steps"] != 0:
        failures.append(
            f"{spec.name}: resuming the stored fixpoint was not a no-op "
            f"({resumed.steps - resumed_before['steps']} steps)")
    if resumed.reachable_methods != cold.reachable_methods:
        failures.append(
            f"{spec.name}: restored snapshot disagrees with the cold fixpoint")
    return failures


def _audit_phase() -> list:
    """Post-solve audits over the policy grid, plus a planted corruption.

    Returns a list of failure messages (empty = phase green).  Every
    (scheduling, saturation) combination on every smoke spec must pass the
    full audits (snapshot round-trip included), and a deliberately planted
    corruption must be detected — an auditor is only trustworthy if it can
    fail.
    """
    from repro.checks import audit_state

    failures = []
    for spec in _smoke_specs():
        program = generate_benchmark(spec)
        for label, config in _policy_grid():
            result = SkipFlowAnalysis(program, config).run()
            diagnostics = audit_state(result.solver_state, program)
            if diagnostics:
                failures.append(
                    f"{spec.name} [{label}]: post-solve audit reported "
                    f"{len(diagnostics)} finding(s), first: "
                    f"{diagnostics[0].render()}")

    # Canary: a worklist bit forced back on must trip the residue audit.
    spec = _smoke_specs()[0]
    program = generate_benchmark(spec)
    result = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
    state = result.solver_state
    next(iter(state.pvpg.all_flows())).in_worklist = True
    planted = audit_state(state, program, snapshot=False)
    if not any(diag.id == "AUD001" for diag in planted):
        failures.append(
            "planted worklist residue was not detected by audit AUD001")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="cache directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)

    specs = _smoke_specs()
    with tempfile.TemporaryDirectory() as tempdir:
        cache_dir = args.cache_dir or tempdir
        first_cache = ResultCache(cache_dir)
        first = run_specs(specs, jobs=args.jobs, cache=first_cache)

        second_cache = ResultCache(cache_dir)
        second = run_specs(specs, jobs=args.jobs, cache=second_cache)

        # Drop any pre-existing entries for the ablation config (the script
        # may run against a reused --cache-dir) so the recompute assertions
        # below are deterministic.
        ablation_config = AnalysisConfig.skipflow().with_saturation_threshold(64)
        ablation_cache = ResultCache(cache_dir)
        for spec in specs:
            stale = ablation_cache.path_for(
                ablation_cache.config_key(spec, ablation_config))
            if stale.exists():
                stale.unlink()
        ablation = run_specs(specs, jobs=args.jobs, cache=ablation_cache,
                             skipflow_config=ablation_config)

        # 3-way matrix over the same specs: every half (pta, skipflow, and
        # the saturated skipflow) was cached by the runs above, so the
        # matrix must recompute nothing.
        matrix_cache = ResultCache(cache_dir)
        matrix = run_config_matrix(
            specs,
            [AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow(),
             ablation_config],
            names=("pta", "skipflow", "skipflow-sat"),
            jobs=args.jobs, cache=matrix_cache)

        # Policy matrix: 3 schedulings x 2 saturation policies.  Drop any
        # pre-existing non-default policy entries (reused --cache-dir) so
        # the hit/miss assertions below are deterministic; the fifo/off
        # column is the default SkipFlow config and *must* stay cached.
        policy_grid = _policy_grid()
        policy_cache = ResultCache(cache_dir)
        for spec in specs:
            for label, config in policy_grid:
                if label == "fifo/off":
                    continue
                stale = policy_cache.path_for(
                    policy_cache.config_key(spec, config))
                if stale.exists():
                    stale.unlink()
        policy_matrix = run_config_matrix(
            specs, [config for _, config in policy_grid],
            names=[label for label, _ in policy_grid],
            jobs=args.jobs, cache=policy_cache)

        policy_rerun_cache = ResultCache(cache_dir)
        policy_rerun = run_config_matrix(
            specs, [config for _, config in policy_grid],
            names=[label for label, _ in policy_grid],
            jobs=args.jobs, cache=policy_rerun_cache)

        incremental_failures = _incremental_phase(cache_dir)
        audit_failures = _audit_phase()

    failures = list(incremental_failures) + list(audit_failures)
    expected_hits = HALVES * len(specs)
    if second_cache.hits != expected_hits or second_cache.misses != 0:
        failures.append(
            f"expected {expected_hits} cache hits on the second run, got "
            f"{second_cache.hits} hits / {second_cache.misses} misses")
    for before, after in zip(first, second):
        if not after.from_cache:
            failures.append(f"{after.benchmark}: second run was not served from cache")
        if before.as_dict() != after.as_dict():
            failures.append(f"{after.benchmark}: cached result differs from computed")
    for result in first:
        if result.skipflow.reachable_methods >= result.baseline.reachable_methods:
            failures.append(
                f"{result.benchmark}: SkipFlow did not reduce reachable methods "
                f"({result.skipflow.reachable_methods} >= "
                f"{result.baseline.reachable_methods})")

    # The ablation run varies only the SkipFlow config: every baseline half
    # must come from the cache, every SkipFlow half must be recomputed.
    if ablation_cache.hits != len(specs) or ablation_cache.misses != len(specs):
        failures.append(
            f"expected the ablation run to hit {len(specs)} baseline halves and "
            f"miss {len(specs)} SkipFlow halves, got {ablation_cache.hits} hits / "
            f"{ablation_cache.misses} misses")
    for result in ablation:
        if not result.baseline_from_cache:
            failures.append(
                f"{result.benchmark}: ablation run recomputed the shared baseline")
        if result.skipflow_from_cache:
            failures.append(
                f"{result.benchmark}: ablation run did not recompute SkipFlow")

    # The 3-way matrix shares every half with the earlier runs: each half
    # must have been solved exactly once in this whole session, so the
    # matrix itself is assembled purely from cache hits.
    expected_matrix_hits = 3 * len(specs)
    if matrix_cache.hits != expected_matrix_hits or matrix_cache.misses != 0:
        failures.append(
            f"expected the 3-way matrix to hit all {expected_matrix_hits} "
            f"shared halves, got {matrix_cache.hits} hits / "
            f"{matrix_cache.misses} misses")
    for pairwise, sat, row in zip(first, ablation, matrix):
        if not row.from_cache:
            failures.append(f"{row.benchmark}: 3-way matrix re-solved a shared half")
        if row.names != ("pta", "skipflow", "skipflow-sat"):
            failures.append(f"{row.benchmark}: unexpected matrix columns {row.names}")
        expectations = (
            ("pta", pairwise.baseline), ("skipflow", pairwise.skipflow),
            ("skipflow-sat", sat.skipflow))
        for column, report in expectations:
            if row.report(column).metrics != report.metrics:
                failures.append(
                    f"{row.benchmark}: matrix column {column!r} differs from "
                    f"the pairwise result")

    # Policy matrix: every (scheduling, saturation) half is keyed
    # distinctly, the default fifo/off column reuses the halves the first
    # run cached, and only the five non-default policies solve.
    grid_size = len(policy_grid)
    for spec in specs:
        keys = {policy_cache.config_key(spec, config)
                for _, config in policy_grid}
        if len(keys) != grid_size:
            failures.append(
                f"{spec.name}: expected {grid_size} distinct policy cache "
                f"keys, got {len(keys)}")
    expected_policy_misses = (grid_size - 1) * len(specs)
    if (policy_cache.hits != len(specs)
            or policy_cache.misses != expected_policy_misses):
        failures.append(
            f"expected the policy matrix to hit {len(specs)} fifo/off halves "
            f"and miss {expected_policy_misses} policy halves, got "
            f"{policy_cache.hits} hits / {policy_cache.misses} misses")
    expected_policy_hits = grid_size * len(specs)
    if (policy_rerun_cache.hits != expected_policy_hits
            or policy_rerun_cache.misses != 0):
        failures.append(
            f"expected the policy re-run to hit all {expected_policy_hits} "
            f"policy halves, got {policy_rerun_cache.hits} hits / "
            f"{policy_rerun_cache.misses} misses")
    for row, rerun_row in zip(policy_matrix, policy_rerun):
        if not row.run("fifo/off").from_cache:
            failures.append(
                f"{row.benchmark}: policy matrix re-solved the default "
                f"fifo/off half")
        reachable = {run.report.metrics.reachable_methods for run in row.runs}
        if len(reachable) != 1:
            failures.append(
                f"{row.benchmark}: policies disagree on the fixed point "
                f"(reachable methods {sorted(reachable)})")
        for scheduling in POLICY_SCHEDULINGS:
            # The threshold never fires on the smoke specs, so each
            # scheduling's off and declared-type columns are bit-identical.
            off = row.report(f"{scheduling}/off")
            sat = row.report(f"{scheduling}/declared-type")
            if (off.solver_steps != sat.solver_steps
                    or off.metrics != sat.metrics):
                failures.append(
                    f"{row.benchmark}: {scheduling} off vs declared-type "
                    f"columns differ although saturation never fired")
        if row.as_dict() != rerun_row.as_dict():
            failures.append(
                f"{row.benchmark}: cached policy result differs from computed")

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"smoke ok: {len(specs)} specs, jobs={args.jobs}, "
          f"second run {second_cache.hits}/{expected_hits} half hits, "
          f"ablation reused {ablation_cache.hits} baseline halves, "
          f"3-way matrix reused {matrix_cache.hits}/{expected_matrix_hits} halves, "
          f"policy matrix {grid_size}x{len(specs)} keyed distinctly "
          f"(re-run {policy_rerun_cache.hits}/{expected_policy_hits} hits), "
          f"incremental edit resumed warm + snapshot round-trip, "
          f"post-solve audits clean + planted residue caught")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
