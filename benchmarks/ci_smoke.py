"""CI smoke test for the benchmark engine.

Runs a couple of small specs through :func:`repro.engine.run_specs` on a
process pool, then repeats the run against the same cache directory and
asserts that every result is served from the cache with identical numbers.
Exits non-zero (with a message) on any violation, so it can gate CI::

    python benchmarks/ci_smoke.py --jobs 2 --cache-dir .bench-cache
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.engine import ResultCache, run_specs
from repro.workloads.generator import spec_from_reduction


def _smoke_specs():
    return [
        spec_from_reduction(name="smoke-small", suite="smoke",
                            total_methods=80, reduction_percent=12.0),
        spec_from_reduction(name="smoke-medium", suite="smoke",
                            total_methods=160, reduction_percent=8.0),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="cache directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)

    specs = _smoke_specs()
    with tempfile.TemporaryDirectory() as tempdir:
        cache_dir = args.cache_dir or tempdir
        first_cache = ResultCache(cache_dir)
        first = run_specs(specs, jobs=args.jobs, cache=first_cache)

        second_cache = ResultCache(cache_dir)
        second = run_specs(specs, jobs=args.jobs, cache=second_cache)

    failures = []
    if second_cache.hits != len(specs) or second_cache.misses != 0:
        failures.append(
            f"expected {len(specs)} cache hits on the second run, got "
            f"{second_cache.hits} hits / {second_cache.misses} misses")
    for before, after in zip(first, second):
        if not after.from_cache:
            failures.append(f"{after.benchmark}: second run was not served from cache")
        if before.as_dict() != after.as_dict():
            failures.append(f"{after.benchmark}: cached result differs from computed")
    for result in first:
        if result.skipflow.reachable_methods >= result.baseline.reachable_methods:
            failures.append(
                f"{result.benchmark}: SkipFlow did not reduce reachable methods "
                f"({result.skipflow.reachable_methods} >= "
                f"{result.baseline.reachable_methods})")

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"smoke ok: {len(specs)} specs, jobs={args.jobs}, "
          f"second run {second_cache.hits}/{len(specs)} cache hits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
