"""CI smoke test for the benchmark engine.

Runs a couple of small specs through :func:`repro.engine.run_specs` on a
process pool, then repeats the run against the same cache directory and
asserts that every result is served from the cache — two hits per spec, one
per configuration half — with identical numbers.  A third run under a
different SkipFlow configuration must reuse the cached baseline halves and
the program-store IR blobs while recomputing only the SkipFlow side.
Finally a 3-way matrix (pta, skipflow, skipflow+saturation) over the same
specs must be assembled *entirely* from the halves those earlier runs
cached — every shared half solved exactly once across the whole session —
with numbers identical to the pairwise runs.  Exits non-zero (with a
message) on any violation, so it can gate CI::

    python benchmarks/ci_smoke.py --jobs 2 --cache-dir .bench-cache
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.core.analysis import AnalysisConfig
from repro.engine import ResultCache, run_config_matrix, run_specs
from repro.workloads.generator import spec_from_reduction

#: Configuration halves per comparison (baseline + SkipFlow).
HALVES = 2


def _smoke_specs():
    return [
        spec_from_reduction(name="smoke-small", suite="smoke",
                            total_methods=80, reduction_percent=12.0),
        spec_from_reduction(name="smoke-medium", suite="smoke",
                            total_methods=160, reduction_percent=8.0),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="cache directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)

    specs = _smoke_specs()
    with tempfile.TemporaryDirectory() as tempdir:
        cache_dir = args.cache_dir or tempdir
        first_cache = ResultCache(cache_dir)
        first = run_specs(specs, jobs=args.jobs, cache=first_cache)

        second_cache = ResultCache(cache_dir)
        second = run_specs(specs, jobs=args.jobs, cache=second_cache)

        # Drop any pre-existing entries for the ablation config (the script
        # may run against a reused --cache-dir) so the recompute assertions
        # below are deterministic.
        ablation_config = AnalysisConfig.skipflow().with_saturation_threshold(64)
        ablation_cache = ResultCache(cache_dir)
        for spec in specs:
            stale = ablation_cache.path_for(
                ablation_cache.config_key(spec, ablation_config))
            if stale.exists():
                stale.unlink()
        ablation = run_specs(specs, jobs=args.jobs, cache=ablation_cache,
                             skipflow_config=ablation_config)

        # 3-way matrix over the same specs: every half (pta, skipflow, and
        # the saturated skipflow) was cached by the runs above, so the
        # matrix must recompute nothing.
        matrix_cache = ResultCache(cache_dir)
        matrix = run_config_matrix(
            specs,
            [AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow(),
             ablation_config],
            names=("pta", "skipflow", "skipflow-sat"),
            jobs=args.jobs, cache=matrix_cache)

    failures = []
    expected_hits = HALVES * len(specs)
    if second_cache.hits != expected_hits or second_cache.misses != 0:
        failures.append(
            f"expected {expected_hits} cache hits on the second run, got "
            f"{second_cache.hits} hits / {second_cache.misses} misses")
    for before, after in zip(first, second):
        if not after.from_cache:
            failures.append(f"{after.benchmark}: second run was not served from cache")
        if before.as_dict() != after.as_dict():
            failures.append(f"{after.benchmark}: cached result differs from computed")
    for result in first:
        if result.skipflow.reachable_methods >= result.baseline.reachable_methods:
            failures.append(
                f"{result.benchmark}: SkipFlow did not reduce reachable methods "
                f"({result.skipflow.reachable_methods} >= "
                f"{result.baseline.reachable_methods})")

    # The ablation run varies only the SkipFlow config: every baseline half
    # must come from the cache, every SkipFlow half must be recomputed.
    if ablation_cache.hits != len(specs) or ablation_cache.misses != len(specs):
        failures.append(
            f"expected the ablation run to hit {len(specs)} baseline halves and "
            f"miss {len(specs)} SkipFlow halves, got {ablation_cache.hits} hits / "
            f"{ablation_cache.misses} misses")
    for result in ablation:
        if not result.baseline_from_cache:
            failures.append(
                f"{result.benchmark}: ablation run recomputed the shared baseline")
        if result.skipflow_from_cache:
            failures.append(
                f"{result.benchmark}: ablation run did not recompute SkipFlow")

    # The 3-way matrix shares every half with the earlier runs: each half
    # must have been solved exactly once in this whole session, so the
    # matrix itself is assembled purely from cache hits.
    expected_matrix_hits = 3 * len(specs)
    if matrix_cache.hits != expected_matrix_hits or matrix_cache.misses != 0:
        failures.append(
            f"expected the 3-way matrix to hit all {expected_matrix_hits} "
            f"shared halves, got {matrix_cache.hits} hits / "
            f"{matrix_cache.misses} misses")
    for pairwise, sat, row in zip(first, ablation, matrix):
        if not row.from_cache:
            failures.append(f"{row.benchmark}: 3-way matrix re-solved a shared half")
        if row.names != ("pta", "skipflow", "skipflow-sat"):
            failures.append(f"{row.benchmark}: unexpected matrix columns {row.names}")
        expectations = (
            ("pta", pairwise.baseline), ("skipflow", pairwise.skipflow),
            ("skipflow-sat", sat.skipflow))
        for column, report in expectations:
            if row.report(column).metrics != report.metrics:
                failures.append(
                    f"{row.benchmark}: matrix column {column!r} differs from "
                    f"the pairwise result")

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"smoke ok: {len(specs)} specs, jobs={args.jobs}, "
          f"second run {second_cache.hits}/{expected_hits} half hits, "
          f"ablation reused {ablation_cache.hits} baseline halves, "
          f"3-way matrix reused {matrix_cache.hits}/{expected_matrix_hits} halves")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
