"""Standalone runner: regenerate Figure 9 (normalized metrics per suite).

Usage::

    python benchmarks/run_figure9.py [--scale 2.0] [--jobs 4]
                                     [--cache-dir .bench-cache]
                                     [--saturation-threshold N]
                                     [--output figure9_output.txt]

For every suite the script prints one panel: each benchmark's SkipFlow metrics
normalized to the PTA baseline (anything below 1.0 is an improvement), plus the
suite averages quoted in the paper's Figure 9 caption.  Comparisons run
through :mod:`repro.engine` (see ``run_table1.py`` for the shared flags).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from run_table1 import add_engine_arguments, engine_options

from repro.engine import run_specs
from repro.reporting.figures import format_figure9, suite_averages
from repro.workloads.suites import all_suites


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2.0)
    parser.add_argument("--output", type=str, default=None)
    add_engine_arguments(parser)
    args = parser.parse_args(argv)
    options = engine_options(args)

    sections: List[str] = []
    overall_reductions = []
    for suite_name, specs in all_suites(scale=args.scale).items():
        print(f"running suite {suite_name}...", file=sys.stderr)
        comparisons = run_specs(specs, **options)
        section = format_figure9(comparisons, suite_name)
        sections.append(section)
        print(section)
        print()
        overall_reductions.append(1.0 - suite_averages(comparisons)["reachable_methods"])

    overall = 100.0 * sum(overall_reductions) / len(overall_reductions)
    footer = (f"average reachable-method reduction across suites: {overall:.1f}% "
              "(paper: ~9%)")
    sections.append(footer)
    print(footer)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(sections))
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
