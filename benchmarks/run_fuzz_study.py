"""Standalone runner: the differential fuzzing study.

Usage::

    python benchmarks/run_fuzz_study.py --quick            # CI mode
    python benchmarks/run_fuzz_study.py --budget 600 --profile deep
    python benchmarks/run_fuzz_study.py --seed 7 --cases 200 \
                                        --out fuzz-artifacts

Each case is a seeded random (program, edit script) pair.  The program
runs under the concrete IR interpreter, and the trace is checked against
every analyzer (CHA, RTA, baseline PTA, SkipFlow) across the full
scheduling × saturation policy matrix, cold and warm-resumed per edit step
(see ``docs/fuzzing.md`` for the invariants).  Failing cases shrink to
minimal repro files under ``--out``.

``--quick`` is the PR gate: at least :data:`QUICK_CASES` cases through the
full matrix plus the mutation smoke (a deliberately broken analyzer must
be caught and shrunk), zero soundness violations expected.  ``--budget``
is the nightly mode: a wall-clock-bounded campaign, typically with the
``deep`` profile's 10-100x program sizes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.fuzz import run_campaign, run_mutation_smoke

QUICK_CASES = 50
QUICK_SEED = 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=QUICK_SEED,
                        help=f"campaign seed (default {QUICK_SEED}); the "
                             f"case stream is a pure function of it")
    parser.add_argument("--cases", type=int, default=None,
                        help="number of cases to run")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds (nightly mode)")
    parser.add_argument("--profile", choices=("quick", "deep"),
                        default="quick",
                        help="case size profile (default: quick)")
    parser.add_argument("--threshold", type=int, default=4,
                        help="saturation threshold swept by the oracle "
                             "(default: 4)")
    parser.add_argument("--out", type=str, default=None,
                        help="directory for shrunk repro files")
    parser.add_argument("--skip-smoke", action="store_true",
                        help="skip the mutation smoke self-check")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI mode: {QUICK_CASES} cases, quick profile, "
                             f"mutation smoke included")
    args = parser.parse_args(argv)

    if args.cases is not None and args.budget is not None:
        print("run_fuzz_study: pass --cases or --budget, not both",
              file=sys.stderr)
        return 2
    cases = args.cases
    if args.quick and cases is None and args.budget is None:
        cases = QUICK_CASES
    if cases is None and args.budget is None:
        cases = QUICK_CASES

    if not args.skip_smoke:
        report, original, shrunk = run_mutation_smoke(seed=args.seed)
        print(f"mutation smoke: planted analyzer bug caught "
              f"({len(report.violations)} violations), case shrunk "
              f"{original.base.expected_total_methods} -> "
              f"{shrunk.base.expected_total_methods} methods",
              file=sys.stderr)

    print(f"fuzz study: seed {args.seed}, profile {args.profile}, "
          + (f"{cases} cases" if cases is not None
             else f"{args.budget:.0f}s budget")
          + ", full scheduling x saturation x warm/cold matrix...",
          file=sys.stderr)
    result = run_campaign(
        seed=args.seed, cases=cases, budget_seconds=args.budget,
        profile=args.profile, threshold=args.threshold,
        out_dir=Path(args.out) if args.out else None,
        log=lambda message: print(f"  {message}", file=sys.stderr,
                                  flush=True))

    print(f"fuzz study: {result.cases_run} cases, "
          f"{result.prefixes_checked} program prefixes, "
          f"{result.combos_checked} analyzer combos in "
          f"{result.duration_seconds:.1f}s — "
          f"{len(result.failures)} soundness failure(s)")
    for failure in result.failures:
        first = failure.report.violations[0]
        where = f" (repro: {failure.repro_path})" if failure.repro_path else ""
        print(f"  case {failure.case_index}: "
              f"{len(failure.report.violations)} violation(s), "
              f"first: {first}{where}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
