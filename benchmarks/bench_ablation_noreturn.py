"""Ablation: method invocations as predicates (Section 3 / Section 5).

A method that never returns (infinite loop, or a helper that always throws)
makes every statement after its call site unreachable.  This benchmark builds
applications whose guarded libraries sit exclusively behind such calls and
measures how much SkipFlow gains purely from invoke-as-predicate handling,
including the interaction with the analysis time.
"""

from __future__ import annotations

from repro.core.analysis import AnalysisConfig
from repro.image.builder import NativeImageBuilder
from repro.reporting.records import compare_configurations
from repro.workloads.generator import BenchmarkSpec, GuardedModuleSpec, generate_benchmark


def _spec(guarded: int) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=f"noreturn-{guarded}",
        suite="ablation",
        core_methods=60,
        guarded_modules=(
            GuardedModuleSpec("never_returns", guarded // 2),
            GuardedModuleSpec("never_returns", guarded - guarded // 2),
        ),
    )


def _run():
    results = {}
    for guarded in (20, 60, 120):
        comparison = compare_configurations(_spec(guarded))
        results[guarded] = comparison
    return results


def test_invokes_as_predicates(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    benchmark.extra_info["reductions_percent"] = {
        guarded: round(comparison.reachable_method_reduction_percent, 2)
        for guarded, comparison in results.items()
    }
    previous_reduction = 0.0
    for guarded, comparison in sorted(results.items()):
        reduction = comparison.reachable_method_reduction_percent
        print(f"\nguarded={guarded}: PTA={comparison.baseline.reachable_methods} "
              f"SkipFlow={comparison.skipflow.reachable_methods} ({reduction:.1f}%)")
        # The code behind the never-returning guard must be gone entirely.
        assert comparison.skipflow.reachable_methods < comparison.baseline.reachable_methods
        # More guarded code means a larger reduction.
        assert reduction >= previous_reduction
        previous_reduction = reduction


def test_never_returning_method_prunes_continuation(benchmark):
    """Micro-check: the statements after the non-returning call are dead."""
    program = generate_benchmark(_spec(20))
    report = benchmark.pedantic(
        lambda: NativeImageBuilder(program, AnalysisConfig.skipflow()).build(),
        rounds=1, iterations=1)
    launchers = [name for name in program.methods
                 if name.endswith("Launcher.launch")]
    assert launchers
    for launcher in launchers:
        assert not report.result.is_method_reachable(launcher)
