"""Standalone runner: the analysis service under an editing workload.

Usage::

    python benchmarks/run_service_study.py [--benchmark wide-huge-512]
                                           [--steps 4]
                                           [--clients 4] [--rounds 3]
                                           [--load-benchmark wide-flat-64]
                                           [--warm-target 20]
                                           [--output service_study.txt]
                                           [--quick]

Three phases, all through a real daemon (``repro.service``) over HTTP:

1. **Serving trace** — one session over ``--benchmark``: a cold solve,
   then ``--steps`` deterministic edits (the incremental study's rotation),
   each streamed as an ``update`` and paid for by the next ``analyze``.
   Every response is checked against a *from-scratch* cold solve of the
   identically edited shadow program: the fixpoint must match exactly, and
   the warm request's paid steps are reported as a percentage of that cold
   solve (the ``--warm-target`` gate, default < 20%).
2. **Eviction round trip** — the session is forcibly evicted to disk,
   another edit is streamed, and the next analyze must transparently
   rehydrate, resume warm, and still match the cold fixpoint.
3. **Load phase** — ``--clients`` concurrent clients each stream
   ``--rounds`` edit/analyze rounds over their own session of
   ``--load-benchmark``; reported as analyze-latency percentiles (p50/p95)
   and the manager's solve-mode mix.

``--quick`` shrinks everything (small spec, 2 steps, 2x2 load) for CI.
The exit code is non-zero when a fixpoint mismatches or the warm target
is missed — the study is a gate, not just a table.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Dict, List

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.reporting.service import (
    LoadResult,
    ServicePoint,
    format_load_result,
    format_service_study,
    summarize_service,
)
from repro.service import ServiceClient, SessionManager, serving
from repro.service.manager import percentile
from repro.workloads.edits import build_edit_delta, default_edit_script
from repro.workloads.generator import generate_benchmark
from repro.workloads.suites import wide_hierarchy_suite

DEFAULT_BENCHMARK = "wide-huge-512"
DEFAULT_LOAD_BENCHMARK = "wide-flat-64"
QUICK_BENCHMARK = "wide-flat-64"


def _find_spec(name: str):
    for spec in wide_hierarchy_suite():
        if spec.name == name:
            return spec
    known = ", ".join(spec.name for spec in wide_hierarchy_suite())
    raise SystemExit(f"unknown benchmark {name!r}; known: {known}")


def _cold_reference(program) -> tuple:
    """A from-scratch solve: (steps, sorted reachable, sorted edges)."""
    result = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
    return (result.stats.steps,
            sorted(result.reachable_methods),
            sorted([caller, callee]
                   for caller, callee in result.call_edges()))


def _point_from_response(label: str, response: dict,
                         cold: tuple) -> ServicePoint:
    cold_steps, cold_reachable, cold_edges = cold
    graph = response["report"]["call_graph"]
    match = (graph["reachable_methods"] == cold_reachable
             and sorted(graph["call_edges"]) == cold_edges)
    return ServicePoint(
        label=label,
        mode=response["mode"],
        steps_paid=response["steps_paid"],
        cold_steps=cold_steps,
        latency_ms=response["latency_ms"],
        reachable_methods=len(graph["reachable_methods"]),
        fixpoint_match=match,
    )


def run_serving_trace(client: ServiceClient, spec, steps: int,
                      session: str = "trace") -> List[ServicePoint]:
    """Phase 1 + 2: the edit stream, then the eviction round trip."""
    script = default_edit_script(spec, steps + 1)  # last step after eviction
    shadow = generate_benchmark(spec)              # the cold-solve reference
    points: List[ServicePoint] = []

    client.open(session, benchmark=spec.name)
    response = client.analyze(session, "skipflow")
    points.append(_point_from_response("base (cold)", response,
                                       _cold_reference(shadow)))

    for step in script.steps[:steps]:
        client.update(session, edit={"kind": step.kind, "index": step.index})
        build_edit_delta(spec, step).apply_to(shadow)
        response = client.analyze(session, "skipflow")
        points.append(_point_from_response(step.label, response,
                                           _cold_reference(shadow)))

    # Eviction round trip: spill to disk, stream one more edit, and the
    # next analyze must rehydrate, resume warm, and match the cold solve.
    evicted = client.evict(session)
    assert evicted["evicted"], "forced eviction did not happen"
    last = script.steps[steps]
    client.update(session, edit={"kind": last.kind, "index": last.index})
    build_edit_delta(spec, last).apply_to(shadow)
    response = client.analyze(session, "skipflow")
    points.append(_point_from_response(
        f"evict+rehydrate+{last.label}", response, _cold_reference(shadow)))
    client.close(session)
    return points


def run_load_phase(client: ServiceClient, spec, clients: int,
                   rounds: int) -> LoadResult:
    """Phase 3: concurrent edit streams, one session per client."""
    latencies: List[float] = []
    errors: List[BaseException] = []
    record_lock = threading.Lock()

    def stream(index: int) -> None:
        name = f"load-{index}"
        try:
            client.open(name, benchmark=spec.name)
            client.analyze(name, "skipflow")  # the session's cold solve
            for round_index in range(rounds):
                client.update(name, edit={"kind": "add-variant",
                                          "index": round_index})
                started = time.perf_counter()
                client.analyze(name, "skipflow")
                elapsed = time.perf_counter() - started
                with record_lock:
                    latencies.append(elapsed)
            client.close(name)
        except BaseException as error:  # noqa: BLE001 - reported below
            with record_lock:
                errors.append(error)

    before = client.metrics()["analyze_modes"]
    threads = [threading.Thread(target=stream, args=(index,), daemon=True)
               for index in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    after = client.metrics()
    modes: Dict[str, int] = {
        mode: after["analyze_modes"][mode] - before.get(mode, 0)
        for mode in after["analyze_modes"]}
    return LoadResult(
        clients=clients,
        rounds=rounds,
        requests=len(latencies),
        p50_ms=percentile(latencies, 50) * 1000,
        p95_ms=percentile(latencies, 95) * 1000,
        analyze_modes=modes,
        warm_resume_ratio=after["warm_resume_ratio"],
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--benchmark", default=DEFAULT_BENCHMARK,
                        help="WideHierarchy spec for the serving trace "
                             f"(default: {DEFAULT_BENCHMARK})")
    parser.add_argument("--steps", type=int, default=4,
                        help="edit steps in the serving trace (default: 4)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent clients in the load phase")
    parser.add_argument("--rounds", type=int, default=3,
                        help="edit/analyze rounds per load client")
    parser.add_argument("--load-benchmark", default=DEFAULT_LOAD_BENCHMARK,
                        help="spec each load client edits "
                             f"(default: {DEFAULT_LOAD_BENCHMARK})")
    parser.add_argument("--warm-target", type=float, default=20.0,
                        help="max warm steps as %% of the cold solve "
                             "(default: 20)")
    parser.add_argument("--output", default=None,
                        help="also write the report to this file")
    parser.add_argument("--quick", action="store_true",
                        help="small spec, 2 steps, 2x2 load (CI smoke)")
    args = parser.parse_args(argv)

    if args.quick:
        args.benchmark = QUICK_BENCHMARK
        args.steps = min(args.steps, 2)
        args.clients = min(args.clients, 2)
        args.rounds = min(args.rounds, 2)

    spec = _find_spec(args.benchmark)
    load_spec = _find_spec(args.load_benchmark)

    manager = SessionManager(max_live_sessions=max(args.clients + 1, 2))
    with serving(manager) as server:
        host, port = server.server_address
        client = ServiceClient.for_address(host, port, timeout=600)
        points = run_serving_trace(client, spec, args.steps)
        load = run_load_phase(client, load_spec, args.clients, args.rounds)

    summary = summarize_service(points)
    lines = [format_service_study(spec.name, points), "",
             format_load_result(load), ""]
    verdicts = []
    if not summary["all_fixpoints_match"]:
        verdicts.append("FAIL: a served fixpoint differs from the cold solve")
    warm_max = summary["max_warm_step_percent"]
    if summary["warm_requests"] == 0:
        verdicts.append("FAIL: no request was served warm")
    elif warm_max >= args.warm_target:
        verdicts.append(
            f"FAIL: warmest request paid {warm_max:.1f}% of the cold solve "
            f"(target < {args.warm_target:.0f}%)")
    else:
        verdicts.append(
            f"ok: every warm request paid < {args.warm_target:.0f}% of the "
            f"cold solve (max {warm_max:.1f}%, "
            f"mean {summary['mean_warm_step_percent']:.1f}%)")
    rehydrated = points[-1]
    if rehydrated.mode == "warm" and rehydrated.fixpoint_match:
        verdicts.append("ok: eviction + rehydration kept the session warm "
                        "and the fixpoint exact")
    else:
        verdicts.append(
            f"FAIL: post-rehydration request was {rehydrated.mode} "
            f"(fixpoint {'ok' if rehydrated.fixpoint_match else 'MISMATCH'})")
    lines.extend(verdicts)

    report = "\n".join(lines)
    print(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
    return 1 if any(line.startswith("FAIL") for line in verdicts) else 0


if __name__ == "__main__":
    sys.exit(main())
