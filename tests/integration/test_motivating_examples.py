"""Integration tests: the paper's Section 2 examples written in the surface
language and pushed through the whole pipeline (frontend, analysis, image
builder, metrics)."""


from repro import AnalysisConfig, SkipFlowAnalysis
from repro.core.analysis import run_baseline, run_skipflow
from repro.image.builder import build_image
from repro.lang import compile_source

SUNFLOW = """
class Display {
    void imageBegin() { }
}
class FrameDisplay extends Display {
    void imageBegin() { Awt.createWindow(); }
}
class Awt {
    static void createWindow() { Swing.start(); }
}
class Swing {
    static void start() { }
}
class Scene {
    void render(Display display) {
        if (display == null) {
            display = new FrameDisplay();
        }
        display.imageBegin();
    }
}
class Main {
    static void main() {
        Scene scene = new Scene();
        scene.render(new Display());
    }
}
"""

VIRTUAL_THREADS = """
class Thread {
    boolean isVirtual() {
        if (this instanceof BaseVirtualThread) { return true; } else { return false; }
    }
}
class BaseVirtualThread extends Thread { }
class ThreadSet {
    void remove(Thread thread) { }
}
class SharedThreadContainer {
    ThreadSet virtualThreads;
    void onExit(Thread thread) {
        if (thread.isVirtual()) {
            this.virtualThreads.remove(thread);
        }
    }
}
class Main {
    static void main() {
        SharedThreadContainer container = new SharedThreadContainer();
        container.virtualThreads = new ThreadSet();
        container.onExit(new Thread());
    }
}
"""


class TestSunflowExample:
    """Figure 1: the never-taken null default keeps AWT/Swing out of the image."""

    def test_skipflow_removes_gui_stack(self):
        program = compile_source(SUNFLOW)
        result = run_skipflow(program)
        for method in ("FrameDisplay.imageBegin", "Awt.createWindow", "Swing.start"):
            assert not result.is_method_reachable(method)
        assert result.is_method_reachable("Display.imageBegin")

    def test_baseline_keeps_gui_stack(self):
        program = compile_source(SUNFLOW)
        result = run_baseline(program)
        for method in ("FrameDisplay.imageBegin", "Awt.createWindow", "Swing.start"):
            assert result.is_method_reachable(method)

    def test_frame_display_not_instantiated_for_skipflow(self):
        program = compile_source(SUNFLOW)
        result = run_skipflow(program)
        # The phi value feeding imageBegin() contains Display only.
        targets = set().union(*result.call_targets("Scene.render").values())
        assert "Display.imageBegin" in targets
        assert "FrameDisplay.imageBegin" not in targets

    def test_image_sizes_reflect_the_difference(self):
        skip_report = build_image(compile_source(SUNFLOW), AnalysisConfig.skipflow())
        base_report = build_image(compile_source(SUNFLOW), AnalysisConfig.baseline_pta())
        assert skip_report.binary_size_bytes < base_report.binary_size_bytes
        assert skip_report.reachable_methods < base_report.reachable_methods


class TestVirtualThreadsExample:
    """Figure 2: interprocedural boolean + type flow proves remove() dead."""

    def test_skipflow_prunes_remove(self):
        result = run_skipflow(compile_source(VIRTUAL_THREADS))
        assert not result.is_method_reachable("ThreadSet.remove")
        assert result.return_state("Thread.isVirtual").constant_value == 0

    def test_baseline_keeps_remove(self):
        result = run_baseline(compile_source(VIRTUAL_THREADS))
        assert result.is_method_reachable("ThreadSet.remove")

    def test_ablations_show_both_ingredients_needed(self):
        program = compile_source(VIRTUAL_THREADS)
        predicates_only = SkipFlowAnalysis(program, AnalysisConfig.predicates_only()).run()
        primitives_only = SkipFlowAnalysis(program, AnalysisConfig.primitives_only()).run()
        assert predicates_only.is_method_reachable("ThreadSet.remove")
        assert primitives_only.is_method_reachable("ThreadSet.remove")

    def test_adding_virtual_thread_restores_reachability(self):
        source = VIRTUAL_THREADS.replace(
            "container.onExit(new Thread());",
            "container.onExit(new BaseVirtualThread());")
        result = run_skipflow(compile_source(source))
        assert result.is_method_reachable("ThreadSet.remove")
        assert result.return_state("Thread.isVirtual").constant_value == 1
