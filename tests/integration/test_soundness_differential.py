"""Differential soundness testing: concrete execution vs. every analysis.

Soundness is the property the paper cannot compromise on (the analysis feeds
an ahead-of-time compiler): every method that can execute at runtime must be
marked reachable, and every concrete value a variable takes must be covered
by the computed value state.  These tests execute programs with the concrete
interpreter and compare the trace against CHA, RTA, the PTA baseline, and
SkipFlow — on the hand-written motivating examples, on generated workload
applications, and on hypothesis-generated workload specifications.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.cha import ClassHierarchyAnalysis
from repro.baselines.rta import RapidTypeAnalysis
from repro.core.analysis import run_baseline, run_skipflow
from repro.ir.interpreter import HeapObject, execute
from repro.lang import compile_source
from repro.workloads.generator import BenchmarkSpec, GuardedModuleSpec, generate_benchmark
from tests.conftest import build_virtual_threads_program


def _assert_execution_covered(program, trace) -> None:
    """Every executed method must be reachable for every analysis."""
    analyses = {
        "CHA": ClassHierarchyAnalysis(program).run(),
        "RTA": RapidTypeAnalysis(program).run(),
        "PTA": run_baseline(program),
        "SkipFlow": run_skipflow(program),
    }
    for name, result in analyses.items():
        for method in trace.executed_methods:
            assert result.is_method_reachable(method), (
                f"{name} misses executed method {method}")
        reachable_or_stub = set(getattr(result, "reachable_methods", set()))
        reachable_or_stub |= set(getattr(result, "stub_methods", set()))
        for caller, callee in trace.call_edges:
            assert callee in reachable_or_stub, (
                f"{name} misses executed callee {callee} (called from {caller})")


def _assert_value_states_cover_trace(program, trace) -> None:
    """Concrete runtime values must be covered by SkipFlow's value states."""
    result = run_skipflow(program)
    for method_name in trace.executed_methods:
        graph = result.method_graph(method_name)
        if graph is None:
            continue
        signature = graph.method.signature
        for flow in graph.parameter_flows:
            observed = trace.observed_values.get(
                (method_name, graph.method.parameters[flow.index].name), [])
            for value in observed:
                if isinstance(value, HeapObject):
                    assert value.type_name in flow.state.types, (
                        f"{method_name}: runtime type {value.type_name} not in "
                        f"parameter state {flow.state!r}")
                elif value is None:
                    assert flow.state.contains_null
                elif isinstance(value, int):
                    assert flow.state.has_any or flow.state.primitive == value, (
                        f"{method_name}: runtime int {value} not covered by "
                        f"{flow.state!r}")


class TestMotivatingExamples:
    def test_virtual_threads_trace_covered(self):
        for use_virtual in (False, True):
            program = build_virtual_threads_program(use_virtual_threads=use_virtual)
            trace = execute(program)
            _assert_execution_covered(program, trace)
            _assert_value_states_cover_trace(program, trace)

    def test_frontend_program_trace_covered(self):
        program = compile_source("""
            class Shape { int area() { return 0; } }
            class Square extends Shape { int area() { return 4; } }
            class Circle extends Shape { int area() { return 3; } }
            class Main {
                static int main() {
                    Shape s = new Square();
                    int total = s.area();
                    if (total < 10) { s = new Circle(); }
                    return s.area();
                }
            }
        """, entry_points=["Main.main"])
        trace = execute(program)
        _assert_execution_covered(program, trace)
        _assert_value_states_cover_trace(program, trace)


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("pattern", ["null_default", "boolean_flag",
                                         "instanceof_flag", "never_returns"])
    def test_guarded_workloads_sound(self, pattern):
        spec = BenchmarkSpec(
            name=f"sound-{pattern}", suite="soundness", core_methods=25,
            guarded_modules=(GuardedModuleSpec(pattern, 8),),
        )
        program = generate_benchmark(spec)
        # never_returns workloads spin forever by design; bound the execution.
        trace = execute(program, max_steps=5_000)
        _assert_execution_covered(program, trace)
        _assert_value_states_cover_trace(program, trace)


_patterns = st.lists(
    st.sampled_from(["null_default", "boolean_flag", "instanceof_flag"]),
    min_size=1, max_size=3)


class TestHypothesisSoundness:
    # deadline/health-check policy comes from the shared "repro" profile
    # registered in tests/conftest.py; tests only size their example count.
    @settings(max_examples=15)
    @given(core=st.integers(min_value=10, max_value=60), patterns=_patterns,
           module_size=st.integers(min_value=5, max_value=12))
    def test_random_workloads_execution_covered(self, core, patterns, module_size):
        spec = BenchmarkSpec(
            name="hyp-app", suite="soundness", core_methods=core,
            guarded_modules=tuple(GuardedModuleSpec(p, module_size) for p in patterns),
        )
        program = generate_benchmark(spec)
        trace = execute(program, max_steps=10_000)
        skipflow = run_skipflow(program)
        baseline = run_baseline(program)
        for method in trace.executed_methods:
            assert skipflow.is_method_reachable(method)
            assert baseline.is_method_reachable(method)
        # Precision ordering holds as well.
        assert skipflow.reachable_method_count <= baseline.reachable_method_count
