"""The analyzer registry: discovery, lookup, aliases, and registration."""

import pytest

from repro.api import (
    AnalysisReport,
    Analyzer,
    CallGraphAnalyzer,
    ConfigAnalyzer,
    available_analyzers,
    config_backed_analyzers,
    get_analyzer,
    register_analyzer,
    unregister_analyzer,
)
from repro.core.analysis import AnalysisConfig


class TestDiscovery:
    def test_available_analyzers_is_the_precision_ladder(self):
        names = available_analyzers()
        assert names == ("cha", "rta", "pta", "predicates-only",
                         "primitives-only", "skipflow")

    def test_config_backed_analyzers_excludes_call_graph_baselines(self):
        names = config_backed_analyzers()
        assert "cha" not in names and "rta" not in names
        assert {"pta", "skipflow", "predicates-only",
                "primitives-only"} == set(names)

    def test_every_builtin_satisfies_the_protocol(self):
        for name in available_analyzers():
            analyzer = get_analyzer(name)
            assert isinstance(analyzer, Analyzer)
            assert analyzer.name == name
            assert analyzer.description


class TestLookup:
    def test_lookup_is_case_insensitive(self):
        assert get_analyzer("SkipFlow") is get_analyzer("skipflow")
        assert get_analyzer("CHA") is get_analyzer("cha")

    def test_aliases_resolve_to_canonical_analyzers(self):
        assert get_analyzer("baseline") is get_analyzer("pta")
        assert get_analyzer("skipflow-predicates-only") is get_analyzer(
            "predicates-only")
        assert get_analyzer("skipflow-primitives-only") is get_analyzer(
            "primitives-only")

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="cha, rta, pta"):
            get_analyzer("points-to-2000")

    def test_unknown_name_is_also_a_value_error_without_quoting(self):
        """CLI-friendly: catchable as ValueError, str() is the plain message."""
        from repro.api import UnknownAnalyzerError

        with pytest.raises(ValueError):
            get_analyzer("points-to-2000")
        try:
            get_analyzer("points-to-2000")
        except UnknownAnalyzerError as error:
            assert str(error).startswith("unknown analysis")

    def test_require_config_analyzer_guards_call_graph_baselines(self):
        from repro.api import require_config_analyzer

        assert require_config_analyzer("skipflow") is get_analyzer("skipflow")
        with pytest.raises(ValueError, match="call graph only"):
            require_config_analyzer("cha", purpose="the image builder")


class TestRegistration:
    def test_register_and_unregister_custom_analyzer(self):
        custom = ConfigAnalyzer(
            name="skipflow-sat8",
            description="SkipFlow with an 8-type saturation cutoff",
            config_factory=lambda: AnalysisConfig.skipflow()
            .with_saturation_threshold(8),
            precision_rank=35,
        )
        register_analyzer(custom, aliases=("sat8",))
        try:
            assert get_analyzer("sat8") is custom
            assert "skipflow-sat8" in available_analyzers()
            assert custom.config().saturation_threshold == 8
        finally:
            unregister_analyzer("skipflow-sat8")
        assert "skipflow-sat8" not in available_analyzers()
        with pytest.raises(KeyError):
            get_analyzer("sat8")

    def test_duplicate_name_rejected_without_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_analyzer(CallGraphAnalyzer(
                name="cha", description="imposter", algorithm=None))

    def test_replace_overrides_and_restores(self):
        original = get_analyzer("cha")
        replacement = CallGraphAnalyzer(
            name="cha", description="replacement",
            algorithm=original.algorithm)
        register_analyzer(replacement, replace=True)
        try:
            assert get_analyzer("cha") is replacement
        finally:
            register_analyzer(original, replace=True)
        assert get_analyzer("cha") is original

    def test_replace_under_an_alias_clears_the_stale_alias(self):
        """Replacing an analyzer whose name was another's alias must make the
        replacement reachable under that name (not the old alias target)."""
        pta = get_analyzer("pta")
        usurper = ConfigAnalyzer(
            name="baseline", description="claims the pta alias",
            config_factory=pta.config_factory, precision_rank=21)
        register_analyzer(usurper, replace=True)
        try:
            assert get_analyzer("baseline") is usurper
            assert get_analyzer("pta") is pta
            assert "baseline" in available_analyzers()
        finally:
            unregister_analyzer("baseline")
            register_analyzer(pta, aliases=("baseline",), replace=True)
        assert get_analyzer("baseline") is pta
        assert "baseline" not in available_analyzers()


class TestAnalyzerOptions:
    def test_config_analyzer_threads_saturation_through(self):
        config = get_analyzer("pta").config(saturation_threshold=16)
        assert config.saturation_threshold == 16
        assert config.name == "PTA"

    def test_default_configs_match_the_canonical_factories(self):
        assert get_analyzer("skipflow").config() == AnalysisConfig.skipflow()
        assert get_analyzer("pta").config() == AnalysisConfig.baseline_pta()
        assert (get_analyzer("predicates-only").config()
                == AnalysisConfig.predicates_only())
        assert (get_analyzer("primitives-only").config()
                == AnalysisConfig.primitives_only())

    def test_call_graph_analyzer_rejects_saturation(self, tiny_program):
        with pytest.raises(ValueError, match="saturation_threshold"):
            get_analyzer("cha").analyze(tiny_program, ["Main.main"],
                                        saturation_threshold=4)


@pytest.fixture
def tiny_program():
    from repro.lang import compile_source

    return compile_source("""
class Main {
    static void main() { }
}
""")


def test_analyze_returns_report(tiny_program):
    report = get_analyzer("skipflow").analyze(tiny_program, ["Main.main"])
    assert isinstance(report, AnalysisReport)
    assert report.analyzer == "skipflow"
    assert report.is_method_reachable("Main.main")
