"""Session-level incremental analysis: update(), run(resume=...), fallbacks."""

import warnings

import pytest

from repro.api import AnalysisSession, ResumeFallbackWarning
from repro.core.state import SolverState
from repro.ir.delta import DeltaError, ProgramDelta

SOURCE = """
class Base { int run() { return 1; } }
class Impl extends Base { int run() { return 2; } }
class Main {
    static void main() {
        Base b = new Impl();
        b.run();
    }
}
"""


def session_fixture():
    return AnalysisSession.from_source(SOURCE, name="incremental")


def growth_delta():
    delta = ProgramDelta("grow")
    delta.declare_class("Impl2", superclass="Base")
    mb = delta.method("Impl2", "run", return_type="int")
    mb.return_(mb.assign_int(3))
    delta.finish_method(mb)
    delta.declare_class("Grower")
    mb = delta.method("Grower", "go", is_static=True)
    obj = mb.assign_new("Impl2")
    mb.invoke_virtual(obj, "run", result_type="int")
    mb.return_void()
    delta.finish_method(mb)
    delta.add_entry_point("Grower.go")
    return delta


def touch_delta():
    delta = ProgramDelta("touch")
    mb = delta.method("Main", "helper", is_static=True)
    mb.return_void()
    delta.finish_method(mb)
    return delta


class TestUpdate:
    def test_monotone_update_applies_and_records(self):
        session = session_fixture()
        update = session.update(growth_delta())
        assert update.monotone
        assert update.generation == 1
        assert session.generation == 1
        assert "Grower.go" in session.program.methods

    def test_non_monotone_update_applies_but_moves_the_barrier(self):
        session = session_fixture()
        update = session.update(touch_delta())
        assert not update.monotone
        assert update.reasons
        assert "Main.helper" in session.program.methods

    def test_non_monotone_reasons_name_the_offender(self):
        session = session_fixture()
        update = session.update(touch_delta())
        # The reasons identify the offending method and class, not just
        # "some delta": they are what fallback warnings surface later.
        assert any("Main.helper" in reason and "Main" in reason
                   for reason in update.reasons)
        assert session.warm_barrier_reasons == update.reasons

    def test_monotone_update_leaves_no_barrier_reasons(self):
        session = session_fixture()
        session.update(growth_delta())
        assert session.warm_barrier_reasons == ()

    def test_structurally_invalid_update_raises_untouched(self):
        session = session_fixture()
        bad = ProgramDelta()
        bad.declare_class("Impl")  # redeclaration
        with pytest.raises(DeltaError):
            session.update(bad)
        assert session.generation == 0


class TestResume:
    def test_warm_run_equals_cold_after_monotone_update(self):
        session = session_fixture()
        base = session.run("skipflow")
        session.update(growth_delta())
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResumeFallbackWarning)
            warm = session.run("skipflow", resume=base)
        cold = session.run("skipflow")
        assert warm.reachable_methods == cold.reachable_methods
        assert set(warm.call_edges) == set(cold.call_edges)
        assert "Impl2.run" in warm.reachable_methods

    def test_resume_accepts_report_result_or_state(self):
        for shape in ("report", "result", "state"):
            fresh = session_fixture()
            first = fresh.run("skipflow")
            fresh.update(growth_delta())
            resume = {"report": first, "result": first.raw,
                      "state": first.raw.solver_state}[shape]
            with warnings.catch_warnings():
                warnings.simplefilter("error", ResumeFallbackWarning)
                warm = fresh.run("skipflow", resume=resume)
            assert "Impl2.run" in warm.reachable_methods, shape

    def test_resume_with_wrong_type_raises(self):
        session = session_fixture()
        with pytest.raises(TypeError, match="resume must be"):
            session.run("skipflow", resume=object())

    def test_non_monotone_update_falls_back_loudly(self):
        session = session_fixture()
        base = session.run("skipflow")
        session.update(touch_delta())
        with pytest.warns(ResumeFallbackWarning, match="non-monotone"):
            fallback = session.run("skipflow", resume=base)
        cold = session.run("skipflow")
        assert fallback.reachable_methods == cold.reachable_methods

    def test_fallback_warning_names_the_offending_method(self):
        session = session_fixture()
        base = session.run("skipflow")
        session.update(touch_delta())
        # The warning must say *which* edit broke monotonicity, not just
        # that one happened: "method Main.helper is added to pre-existing
        # class Main ...".
        with pytest.warns(ResumeFallbackWarning,
                          match=r"method Main\.helper is added to "
                                r"pre-existing class Main"):
            session.run("skipflow", resume=base)

    def test_states_after_the_barrier_resume_again(self):
        session = session_fixture()
        session.run("skipflow")
        session.update(touch_delta())  # barrier at generation 1
        fresh = session.run("skipflow")
        session.update(growth_delta())
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResumeFallbackWarning)
            warm = session.run("skipflow", resume=fresh)
        assert "Impl2.run" in warm.reachable_methods

    def test_forked_states_respect_the_warm_barrier(self):
        session = session_fixture()
        base = session.run("skipflow")
        branch = base.raw.solver_state.fork()
        session.update(touch_delta())  # non-monotone
        with pytest.warns(ResumeFallbackWarning, match="non-monotone"):
            session.run("skipflow", resume=branch)

    def test_unprovable_foreign_state_falls_back_after_the_barrier(self):
        session = session_fixture()
        base = session.run("skipflow")
        # Un-stamped, generation-free snapshot (to_bytes without a program).
        foreign = SolverState.from_bytes(base.raw.solver_state.to_bytes())
        session.update(touch_delta())  # non-monotone
        with pytest.warns(ResumeFallbackWarning, match="neither") as caught:
            session.run("skipflow", resume=foreign)
        # This path names the offender too.
        assert any("Main.helper" in str(warning.message)
                   for warning in caught)

    def test_config_mismatch_falls_back_loudly(self):
        session = session_fixture()
        base = session.run("skipflow")
        with pytest.warns(ResumeFallbackWarning, match="configuration"):
            report = session.run("pta", resume=base)
        assert report.analyzer == "pta"

    def test_call_graph_analyzers_fall_back_loudly(self):
        session = session_fixture()
        base = session.run("skipflow")
        with pytest.warns(ResumeFallbackWarning, match="no propagation"):
            report = session.run("cha", resume=base)
        assert report.analyzer == "cha"

    def test_resume_from_restored_snapshot(self):
        session = session_fixture()
        base = session.run("skipflow")
        blob = base.raw.solver_state.to_bytes(session.program)
        session.update(growth_delta())
        restored = SolverState.from_bytes(blob)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResumeFallbackWarning)
            warm = session.run("skipflow", resume=restored)
        assert "Impl2.run" in warm.reachable_methods

    def test_stale_stamped_snapshot_falls_back_loudly(self):
        first = session_fixture()
        base = first.run("skipflow")
        blob = base.raw.solver_state.to_bytes(first.program)
        # A session over a *different* program cannot use that snapshot.
        other = AnalysisSession.from_source(
            SOURCE.replace("return 2", "return 9"), name="other")
        with pytest.warns(ResumeFallbackWarning, match="monotone"):
            report = other.run("skipflow", resume=SolverState.from_bytes(blob))
        assert report.reachable_method_count == 2

    def test_compare_rejects_resume_option(self):
        session = session_fixture()
        base = session.run("skipflow")
        with pytest.raises(ValueError, match="resume"):
            session.compare(["pta", "skipflow"],
                            resume=base.raw.solver_state)
