"""The versioned report wire schema: determinism and exact round-trips."""

import json

import pytest

from repro.api import (
    AnalysisSession,
    SCHEMA_VERSION,
    SchemaVersionError,
    call_graph_to_dict,
)
from repro.api.report import AnalysisReport

SOURCE = """
class Worker {
    int work() { return 7; }
}
class Main {
    static void main() {
        Worker worker = new Worker();
        worker.work();
    }
}
"""


@pytest.fixture
def session():
    return AnalysisSession.from_source(SOURCE)


class TestToDict:
    def test_engine_report_payload_shape(self, session):
        payload = session.run("skipflow").to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["analyzer"] == "skipflow"
        assert payload["metrics"]["reachable_methods"] == 2
        assert payload["solver_stats"]["steps"] > 0
        assert "Worker.work" in payload["call_graph"]["reachable_methods"]
        assert ["Main.main", "Worker.work"] in payload["call_graph"]["call_edges"]

    def test_call_graph_baselines_serialize_without_solver_stats(self, session):
        payload = session.run("cha").to_dict()
        assert payload["solver_stats"] is None
        assert payload["metrics"]["solver_steps"] is None
        assert payload["metrics"]["poly_calls"] is None

    def test_serialization_is_deterministic(self, session):
        # Serializing one report twice is bit-identical (sets are sorted);
        # across two *runs* only the wall-clock metric may differ.
        report = session.run("skipflow")
        assert (json.dumps(report.to_dict(), sort_keys=True)
                == json.dumps(report.to_dict(), sort_keys=True))
        second = session.run("skipflow").to_dict()
        first = report.to_dict()
        for payload in (first, second):
            payload["metrics"].pop("analysis_time_seconds")
        assert first == second


class TestRoundTrip:
    @pytest.mark.parametrize("analysis", ["skipflow", "pta", "cha", "rta"])
    def test_to_dict_from_dict_is_exact(self, session, analysis):
        report = session.run(analysis)
        payload = report.to_dict()
        rebuilt = AnalysisReport.from_dict(
            json.loads(json.dumps(payload)))  # via real JSON text
        assert rebuilt.to_dict() == payload
        assert rebuilt.analyzer == report.analyzer
        assert rebuilt.reachable_methods == report.reachable_methods
        assert set(rebuilt.call_edges) == set(report.call_edges)
        assert rebuilt.solver_steps == report.solver_steps
        assert rebuilt.raw is None  # the deep PVPG does not travel

    def test_unsupported_schema_version_is_refused(self, session):
        payload = session.run("skipflow").to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            AnalysisReport.from_dict(payload)
        with pytest.raises(SchemaVersionError):
            AnalysisReport.from_dict({})


class TestCallGraphView:
    def test_any_view_serializes(self, session):
        report = session.run("rta")
        graph = call_graph_to_dict(report)
        assert graph["reachable_methods"] == sorted(report.reachable_methods)
        assert all(isinstance(edge, list) and len(edge) == 2
                   for edge in graph["call_edges"])
