"""The deprecated top-level runner shims: they warn, and they still work."""

import warnings

import pytest

import repro
from repro.lang.api import compile_source

SOURCE = """
class Main {
    static void main() {
        Worker worker = new Worker();
        worker.work();
    }
}
class Worker {
    int work() { return 1; }
}
"""


def _shim(name):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DeprecationWarning)
        value = getattr(repro, name)
    messages = [str(entry.message) for entry in caught
                if issubclass(entry.category, DeprecationWarning)]
    return value, messages


class TestDeprecatedRunners:
    @pytest.mark.parametrize("name", ["run_skipflow", "run_baseline",
                                      "run_pta"])
    def test_access_warns_and_points_at_the_session_api(self, name):
        value, messages = _shim(name)
        assert callable(value)
        assert len(messages) == 1
        assert f"repro.{name} is deprecated" in messages[0]
        assert "repro.api" in messages[0]
        assert "docs/api.md" in messages[0]

    def test_shims_still_run_the_analysis(self):
        program = compile_source(SOURCE)
        run_skipflow, _ = _shim("run_skipflow")
        result = run_skipflow(program)
        assert "Worker.work" in result.reachable_methods

    def test_shims_stay_in_dunder_all(self):
        for name in ("run_skipflow", "run_baseline", "run_pta"):
            assert name in repro.__all__

    def test_unknown_attribute_is_still_an_attribute_error(self):
        with pytest.raises(AttributeError):
            repro.run_nonsense  # noqa: B018 - the access is the test
