"""The typed error taxonomy: one failure class, one exit code, one status.

``repro.api.errors`` is the single mapping from exception types to CLI
exit codes and daemon HTTP statuses; these tests pin the published
contract (documented in ``docs/api.md``) so a refactor cannot silently
renumber a failure mode.
"""

import pytest

from repro.api.errors import (
    EXIT_CHECK,
    EXIT_COMPILE,
    EXIT_DELTA,
    EXIT_FAILURE,
    EXIT_NO_ENTRY,
    EXIT_SESSION,
    EXIT_USAGE,
    CheckFailedError,
    NoEntryPointError,
    ReproError,
    SchemaVersionError,
    ServiceProtocolError,
    SessionExistsError,
    SessionNotFoundError,
    SessionRehydrationError,
    UnknownAnalyzerError,
    exit_code_for,
    http_status_for,
)
from repro.ir.delta import DeltaError, NonMonotoneDeltaError
from repro.ir.program import ProgramError
from repro.ir.validate import ValidationError
from repro.lang.errors import LangError


class TestTaxonomyClasses:
    def test_every_repro_error_declares_both_mappings(self):
        for cls in (NoEntryPointError, UnknownAnalyzerError,
                    SessionNotFoundError, SessionExistsError,
                    SessionRehydrationError, ServiceProtocolError,
                    SchemaVersionError, CheckFailedError):
            assert issubclass(cls, ReproError)
            assert isinstance(cls.exit_code, int)
            assert isinstance(cls.http_status, int)

    def test_compat_ancestry_keeps_old_except_clauses_working(self):
        # Pre-taxonomy code caught these as ValueError / KeyError; the
        # redesign may not break those handlers.
        assert issubclass(NoEntryPointError, ValueError)
        assert issubclass(UnknownAnalyzerError, KeyError)
        assert issubclass(SessionNotFoundError, KeyError)
        assert issubclass(SchemaVersionError, ValueError)


class TestExitCodes:
    @pytest.mark.parametrize("error,expected", [
        (NoEntryPointError("no roots"), EXIT_NO_ENTRY),
        (UnknownAnalyzerError("nope"), EXIT_USAGE),
        (SessionNotFoundError("s"), EXIT_SESSION),
        (SessionExistsError("s"), EXIT_SESSION),
        (SessionRehydrationError("s"), EXIT_SESSION),
        (ServiceProtocolError("bad"), EXIT_USAGE),
        (SchemaVersionError("v9"), EXIT_USAGE),
        (NonMonotoneDeltaError(["method m changed"]), EXIT_DELTA),
        (DeltaError("duplicate class"), EXIT_DELTA),
        (LangError("parse"), EXIT_COMPILE),
        (ProgramError("unknown entry"), EXIT_COMPILE),
        (ValidationError("Main.main: block has no terminator"), EXIT_COMPILE),
        (CheckFailedError("AUD001 fired"), EXIT_CHECK),
        (ValueError("generic usage"), EXIT_USAGE),
        (RuntimeError("anything else"), EXIT_FAILURE),
    ])
    def test_mapping(self, error, expected):
        assert exit_code_for(error) == expected

    def test_codes_are_distinct_and_documented(self):
        codes = {EXIT_FAILURE, EXIT_USAGE, EXIT_NO_ENTRY, EXIT_COMPILE,
                 EXIT_DELTA, EXIT_SESSION, EXIT_CHECK}
        assert codes == {1, 2, 3, 4, 5, 6, 7}


class TestHttpStatuses:
    @pytest.mark.parametrize("error,expected", [
        (NoEntryPointError("no roots"), 422),
        (UnknownAnalyzerError("nope"), 404),
        (SessionNotFoundError("s"), 404),
        (SessionExistsError("s"), 409),
        (SessionRehydrationError("s"), 500),
        (ServiceProtocolError("bad"), 400),
        (SchemaVersionError("v9"), 400),
        (NonMonotoneDeltaError(["method m changed"]), 409),
        (DeltaError("duplicate class"), 422),
        (LangError("parse"), 422),
        (ProgramError("unknown entry"), 422),
        (ValidationError("Main.main: block has no terminator"), 422),
        (CheckFailedError("AUD001 fired"), 500),
        (ValueError("generic"), 400),
        (RuntimeError("anything else"), 500),
    ])
    def test_mapping(self, error, expected):
        assert http_status_for(error) == expected


class TestMessages:
    def test_unknown_analyzer_str_is_clean(self):
        # KeyError's default repr-quoting would mangle the CLI message.
        error = UnknownAnalyzerError("unknown analysis 'x'")
        assert str(error) == "unknown analysis 'x'"

    def test_non_monotone_error_carries_reasons(self):
        error = NonMonotoneDeltaError(["a", "b"])
        assert error.reasons == ("a", "b")
        assert "a; b" in str(error)
