"""Solver-kernel options through the session/registry API."""

import pytest

from repro.api import AnalysisSession, SolverPolicy, get_analyzer
from repro.lang import compile_source

SOURCE = """
class Config {
    boolean isFeatureEnabled() { return false; }
}
class Feature {
    void start() { }
}
class Main {
    static void main() {
        Config config = new Config();
        if (config.isFeatureEnabled()) {
            Feature feature = new Feature();
            feature.start();
        }
    }
}
"""


@pytest.fixture
def session():
    return AnalysisSession.from_source(SOURCE)


class TestRunOptions:
    def test_run_with_bundled_policy(self, session):
        policy = SolverPolicy(scheduling="degree", saturation="closed-world",
                              saturation_threshold=8)
        report = session.run("skipflow", policy=policy)
        assert report.raw.config.solver_policy == policy
        assert report.reachable_method_count == session.run(
            "skipflow").reachable_method_count

    def test_run_with_individual_knobs(self, session):
        report = session.run("skipflow", scheduling="lifo",
                             saturation_policy="declared-type",
                             saturation_threshold=8)
        config = report.raw.config
        assert config.scheduling == "lifo"
        assert config.saturation_policy == "declared-type"
        assert config.saturation_threshold == 8

    def test_bundled_policy_conflicts_with_knobs(self, session):
        with pytest.raises(ValueError, match="not both"):
            session.run("skipflow", policy=SolverPolicy(), scheduling="lifo")

    def test_call_graph_analyzers_reject_kernel_options(self, session):
        with pytest.raises(ValueError, match="scheduling"):
            session.run("cha", scheduling="lifo")
        with pytest.raises(ValueError, match="policy"):
            session.run("rta", policy=SolverPolicy())

    def test_unknown_policy_name_fails_loudly(self, session):
        with pytest.raises(ValueError, match="unknown scheduling"):
            session.run("skipflow", scheduling="zigzag")


class TestCompareRouting:
    def test_scheduling_reaches_engine_columns_only(self, session):
        comparison = session.compare(["cha", "rta", "pta", "skipflow"],
                                     scheduling="degree")
        assert comparison.is_monotone_precision_ladder()
        for name in ("pta", "skipflow"):
            assert comparison.report(name).raw.config.scheduling == "degree"

    def test_kernel_option_without_engine_column_is_an_error(self, session):
        with pytest.raises(ValueError, match="scheduling"):
            session.compare(["cha", "rta"], scheduling="lifo")

    def test_scheduling_does_not_change_the_ladder(self, session):
        plain = session.compare(["pta", "skipflow"])
        scheduled = session.compare(["pta", "skipflow"], scheduling="rpo")
        assert (plain.reachable_counts() == scheduled.reachable_counts())


class TestAnalyzerConfig:
    def test_config_accepts_policy(self):
        policy = SolverPolicy(scheduling="rpo")
        config = get_analyzer("pta").config(policy=policy)
        assert config.scheduling == "rpo"
        assert config.name == "PTA"

    def test_config_knob_composition(self):
        config = get_analyzer("skipflow").config(
            saturation_threshold=8, saturation_policy="declared-type",
            scheduling="degree")
        assert config.solver_policy.label == "degree/declared-type@8"
