"""Sessions, root resolution, the report facade, and N-way comparisons."""

import pytest

from repro.api import (
    AnalysisReport,
    AnalysisSession,
    CallGraphView,
    NoEntryPointError,
    resolve_roots,
    wrap_result,
)
from repro.baselines.cha import ClassHierarchyAnalysis
from repro.core.analysis import run_skipflow
from repro.engine import ProgramStore
from repro.lang import compile_source
from repro.workloads.generator import spec_from_reduction

SOURCE = """
class Config {
    boolean isFeatureEnabled() { return false; }
}
class Feature {
    void start() { Printer.emit(); }
}
class Greeter {
    void greet(Config config) {
        Printer.emit();
        if (config.isFeatureEnabled()) {
            Feature feature = new Feature();
            feature.start();
        }
    }
}
class Printer {
    static void emit() { }
}
class Unused {
    void never() { }
}
class Main {
    static void main() {
        Greeter greeter = new Greeter();
        greeter.greet(new Config());
    }
}
"""

NO_ENTRY_SOURCE = """
class Lonely {
    void orphan() { }
}
"""


@pytest.fixture(scope="module")
def session():
    return AnalysisSession.from_source(SOURCE, name="greeter")


class TestRootResolution:
    def test_main_convention_is_the_default(self, session):
        assert session.resolve_roots() == ["Main.main"]

    def test_explicit_roots_win(self, session):
        assert session.resolve_roots(["Unused.never"]) == ["Unused.never"]

    def test_missing_explicit_root_is_a_clear_error(self, session):
        with pytest.raises(NoEntryPointError, match="Ghost.method"):
            session.resolve_roots(["Ghost.method"])

    def test_empty_roots_list_is_a_clear_error(self, session):
        with pytest.raises(NoEntryPointError, match="empty roots"):
            session.resolve_roots([])

    def test_program_without_any_entry_point_is_a_clear_error(self):
        orphan = AnalysisSession.from_source(NO_ENTRY_SOURCE)
        with pytest.raises(NoEntryPointError, match="Main.main"):
            orphan.run("skipflow")

    def test_resolve_roots_prefers_program_entry_points(self):
        program = compile_source(SOURCE, entry_points=["Unused.never"])
        assert resolve_roots(program) == ["Unused.never"]


class TestRun:
    def test_engine_analysis_matches_the_legacy_shim(self, session):
        report = session.run("skipflow")
        legacy = run_skipflow(session.program)
        assert report.reachable_methods == frozenset(legacy.reachable_methods)
        assert report.solver_stats == legacy.stats
        assert sorted(report.call_edges) == sorted(legacy.call_edges())

    def test_call_graph_analysis_matches_direct_cha(self, session):
        report = session.run("cha")
        direct = ClassHierarchyAnalysis(session.program).run(["Main.main"])
        assert report.reachable_methods == frozenset(direct.reachable_methods)
        assert set(report.call_edges) == direct.call_edges
        assert report.poly_calls is None and report.solver_stats is None

    def test_options_reach_the_analyzer(self, session):
        report = session.run("skipflow", saturation_threshold=1)
        assert report.raw.config.saturation_threshold == 1

    def test_roots_override_per_run(self, session):
        report = session.run("skipflow", roots=["Unused.never"])
        assert report.reachable_methods == frozenset({"Unused.never"})


class TestCompare:
    def test_precision_ladder_is_monotone(self):
        spec = spec_from_reduction(name="ladder", suite="test",
                                   total_methods=140, reduction_percent=9.0)
        session = AnalysisSession.from_spec(spec)
        comparison = session.compare(["cha", "rta", "pta", "skipflow"])
        counts = [r.reachable_method_count for r in comparison.reports]
        assert comparison.is_monotone_precision_ladder()
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]  # CHA strictly above SkipFlow

    def test_comparison_accessors(self, session):
        comparison = session.compare(["pta", "skipflow"])
        assert comparison.names == ("pta", "skipflow")
        assert comparison.report("skipflow").analyzer == "skipflow"
        counts = comparison.reachable_counts()
        assert counts["skipflow"] < counts["pta"]
        with pytest.raises(KeyError):
            comparison.report("rta")

    def test_comparison_table_renders_all_columns(self, session):
        table = session.compare(["cha", "pta", "skipflow"]).table()
        assert "cha" in table and "pta" in table and "skipflow" in table
        assert "reachable methods" in table
        assert "n/a" in table  # CHA has no poly calls / solver steps

    def test_fewer_than_two_analyses_rejected(self, session):
        with pytest.raises(ValueError, match="at least two"):
            session.compare(["skipflow"])

    def test_duplicate_analyses_rejected_even_via_alias(self, session):
        with pytest.raises(ValueError, match="duplicate"):
            session.compare(["pta", "baseline"])

    def test_non_monotone_order_is_reported_as_such(self, session):
        comparison = session.compare(["skipflow", "cha"])
        assert not comparison.is_monotone_precision_ladder()

    def test_report_lookup_accepts_the_alias_used_in_compare(self, session):
        comparison = session.compare(["baseline", "skipflow"])
        assert comparison.names == ("pta", "skipflow")
        assert comparison.report("baseline") is comparison.reports[0]
        assert comparison.report("pta") is comparison.reports[0]

    def test_options_route_only_to_supporting_analyzers(self, session):
        """A ladder mixing CHA with engine configs can still sweep engine
        knobs: the cutoff reaches the engine columns, CHA is unaffected."""
        comparison = session.compare(["cha", "pta", "skipflow"],
                                     saturation_threshold=1)
        assert comparison.report("cha").solver_stats is None
        for name in ("pta", "skipflow"):
            assert comparison.report(name).raw.config.saturation_threshold == 1

    def test_option_supported_by_no_analyzer_is_an_error(self, session):
        with pytest.raises(ValueError, match="not supported by any"):
            session.compare(["cha", "rta"], saturation_threshold=4)


class TestFromSpec:
    def test_program_store_roundtrip_is_bit_identical(self, tmp_path):
        spec = spec_from_reduction(name="stored", suite="test",
                                   total_methods=80, reduction_percent=10.0)
        fresh = AnalysisSession.from_spec(spec).run("skipflow")

        store = ProgramStore(tmp_path)
        first = AnalysisSession.from_spec(spec, store=store).run("skipflow")
        assert store.contains(spec)
        second = AnalysisSession.from_spec(spec, store=store).run("skipflow")
        assert store.hits == 1

        for report in (first, second):
            assert report.reachable_methods == fresh.reachable_methods
            assert report.solver_stats == fresh.solver_stats


class TestReportFacade:
    def test_wrap_dispatches_both_result_shapes(self, session):
        analysis = run_skipflow(session.program)
        call_graph = ClassHierarchyAnalysis(session.program).run(["Main.main"])
        assert wrap_result(analysis).solver_stats is analysis.stats
        assert wrap_result(call_graph).analyzer == "CHA"
        with pytest.raises(TypeError):
            wrap_result(object())

    def test_reports_satisfy_the_call_graph_view(self, session):
        for name in ("cha", "skipflow"):
            report = session.run(name)
            assert isinstance(report, CallGraphView)
            assert report.is_method_reachable("Greeter.greet")
            assert "Printer.emit" in report.callees_of("Greeter.greet")
            assert "Main.main" in report.callers_of("Greeter.greet")
            assert not report.is_method_reachable("Unused.never")

    def test_as_dict_carries_none_for_unavailable_metrics(self, session):
        row = session.run("rta").as_dict()
        assert row["poly_calls"] is None and row["solver_steps"] is None
        row = session.run("pta").as_dict()
        assert isinstance(row["solver_steps"], int)

    def test_report_is_a_plain_dataclass(self, session):
        report = session.run("skipflow")
        assert isinstance(report, AnalysisReport)
        assert report.reachable_method_count == len(report.reachable_methods)
        assert report.call_edge_count == len(report.call_edges)
