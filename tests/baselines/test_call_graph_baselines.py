"""Tests for the CHA / RTA / PTA baselines and their relative precision."""

import pytest

from repro.baselines.cha import ClassHierarchyAnalysis
from repro.baselines.pta import run_pta
from repro.baselines.rta import RapidTypeAnalysis
from repro.core.analysis import run_skipflow
from repro.lang import compile_source

SOURCE = """
class Shape {
    void draw() { }
}
class Circle extends Shape {
    void draw() { CircleRenderer.render(); }
}
class Square extends Shape {
    void draw() { SquareRenderer.render(); }
}
class CircleRenderer { static void render() { } }
class SquareRenderer { static void render() { } }
class Canvas {
    void paint(Shape shape) { shape.draw(); }
}
class Main {
    static void main() {
        Canvas canvas = new Canvas();
        Shape shape = new Circle();
        canvas.paint(shape);
    }
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, entry_points=["Main.main"])


class TestCHA:
    def test_cha_uses_all_declared_subtypes(self, program):
        result = ClassHierarchyAnalysis(program).run()
        # CHA cannot tell that Square is never instantiated.
        assert result.is_method_reachable("Circle.draw")
        assert result.is_method_reachable("Square.draw")
        assert result.is_method_reachable("SquareRenderer.render")

    def test_cha_call_edges(self, program):
        result = ClassHierarchyAnalysis(program).run()
        assert ("Canvas.paint", "Circle.draw") in result.call_edges
        assert ("Canvas.paint", "Square.draw") in result.call_edges
        assert "Circle.draw" in result.callees_of("Canvas.paint")

    def test_cha_instantiated_types_recorded(self, program):
        result = ClassHierarchyAnalysis(program).run()
        assert "Circle" in result.instantiated_types
        assert "Square" not in result.instantiated_types

    def test_cha_requires_roots(self, program):
        with pytest.raises(ValueError):
            ClassHierarchyAnalysis(program).run(roots=[])

    def test_cha_explicit_roots(self, program):
        result = ClassHierarchyAnalysis(program).run(roots=["Circle.draw"])
        assert result.is_method_reachable("CircleRenderer.render")
        assert not result.is_method_reachable("Main.main")


class TestRTA:
    def test_rta_restricts_to_instantiated_types(self, program):
        result = RapidTypeAnalysis(program).run()
        assert result.is_method_reachable("Circle.draw")
        assert not result.is_method_reachable("Square.draw")
        assert not result.is_method_reachable("SquareRenderer.render")

    def test_rta_more_precise_than_cha(self, program):
        cha = ClassHierarchyAnalysis(program).run()
        rta = RapidTypeAnalysis(program).run()
        assert rta.reachable_methods <= cha.reachable_methods
        assert rta.reachable_method_count < cha.reachable_method_count

    def test_rta_handles_allocation_after_call_site(self):
        # The call site is processed before the second allocation is seen; the
        # fixed point must still add the late target.
        source = """
            class Handler { void on() { } }
            class LateHandler extends Handler { void on() { LateLib.touch(); } }
            class LateLib { static void touch() { } }
            class Main {
                static void dispatch(Handler handler) { handler.on(); }
                static void main() {
                    Main.dispatch(new Handler());
                    Handler late = new LateHandler();
                    Main.dispatch(late);
                }
            }
        """
        program = compile_source(source, entry_points=["Main.main"])
        result = RapidTypeAnalysis(program).run()
        assert result.is_method_reachable("LateHandler.on")
        assert result.is_method_reachable("LateLib.touch")

    def test_rta_static_call_resolution(self, program):
        result = RapidTypeAnalysis(program).run()
        assert result.is_method_reachable("CircleRenderer.render")


class TestPrecisionOrdering:
    def test_pta_at_least_as_precise_as_rta(self, program):
        rta = RapidTypeAnalysis(program).run()
        pta = run_pta(program)
        assert pta.reachable_method_count <= rta.reachable_method_count

    def test_skipflow_at_least_as_precise_as_pta(self, program):
        pta = run_pta(program)
        skipflow = run_skipflow(program)
        assert skipflow.reachable_method_count <= pta.reachable_method_count

    def test_all_analyses_keep_truly_reachable_code(self, program):
        """Soundness cross-check: code that definitely executes is kept by all."""
        must_be_reachable = ["Main.main", "Canvas.paint", "Circle.draw",
                             "CircleRenderer.render"]
        analyses = [
            ClassHierarchyAnalysis(program).run(),
            RapidTypeAnalysis(program).run(),
            run_pta(program),
            run_skipflow(program),
        ]
        for analysis in analyses:
            for method in must_be_reachable:
                assert analysis.is_method_reachable(method), (
                    f"{method} missing from {analysis}")
