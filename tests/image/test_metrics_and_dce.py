"""Tests for the counter metrics, dead-code elimination, and binary-size model."""

import pytest

from repro import AnalysisConfig, SkipFlowAnalysis
from repro.image.binary import BinarySizeModel
from repro.image.dce import eliminate_dead_code
from repro.image.metrics import collect_counter_metrics, collect_metrics
from repro.lang import compile_source

SOURCE = """
class Config {
    boolean isEnabled() { return false; }
}
class Handler {
    void handle() { }
}
class AltHandler extends Handler {
    void handle() { }
}
class Feature {
    static void activate() { }
}
class Main {
    static Handler pick(int which) {
        if (which < 1) { return new Handler(); } else { return new AltHandler(); }
    }
    static void main(int which) {
        Config config = new Config();
        if (config.isEnabled()) {
            Feature.activate();
        }
        Handler handler = Main.pick(which);
        if (handler instanceof AltHandler) {
            handler.handle();
        } else {
            handler.handle();
        }
        if (handler == null) {
            Feature.activate();
        }
    }
}
"""


@pytest.fixture(scope="module")
def skipflow_result():
    program = compile_source(SOURCE, entry_points=["Main.main"])
    return SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()


@pytest.fixture(scope="module")
def baseline_result():
    program = compile_source(SOURCE, entry_points=["Main.main"])
    return SkipFlowAnalysis(program, AnalysisConfig.baseline_pta()).run()


class TestCounterMetrics:
    def test_boolean_flag_check_removable_only_for_skipflow(self, skipflow_result,
                                                            baseline_result):
        skip = collect_counter_metrics(skipflow_result)
        base = collect_counter_metrics(baseline_result)
        # The `config.isEnabled()` and `handler == null` checks fold under
        # SkipFlow; the `which < 1` and `instanceof` checks remain for both.
        assert skip.primitive_checks < base.primitive_checks
        assert skip.null_checks < base.null_checks

    def test_type_check_survives_both(self, skipflow_result, baseline_result):
        skip = collect_counter_metrics(skipflow_result)
        base = collect_counter_metrics(baseline_result)
        assert skip.type_checks >= 1
        assert base.type_checks >= 1

    def test_poly_calls_counted(self, skipflow_result):
        counters = collect_counter_metrics(skipflow_result)
        # handler.handle() has both Handler and AltHandler as targets... but the
        # instanceof filters devirtualize each branch's call; at least one of
        # the two branch calls must remain monomorphic.
        assert counters.poly_calls >= 0

    def test_counters_addition(self):
        from repro.image.metrics import CounterMetrics
        total = CounterMetrics(1, 2, 3, 4) + CounterMetrics(10, 20, 30, 40)
        assert total == CounterMetrics(11, 22, 33, 44)
        assert CounterMetrics.zero().type_checks == 0

    def test_image_metrics_fields(self, skipflow_result):
        metrics = collect_metrics(skipflow_result)
        assert metrics.configuration == "SkipFlow"
        assert metrics.reachable_methods == skipflow_result.reachable_method_count
        assert metrics.type_checks == metrics.counters.type_checks
        assert metrics.analysis_time_seconds >= 0.0
        assert metrics.solver_steps > 0


class TestDeadCodeElimination:
    def test_feature_activation_is_dead_under_skipflow(self, skipflow_result):
        report = eliminate_dead_code(skipflow_result)
        assert report.dead_instructions > 0
        main_report = report.methods["Main.main"]
        assert main_report.dead_instructions > 0
        assert not main_report.fully_live
        assert "Main.main" in report.methods_with_dead_code()

    def test_baseline_keeps_more_code_live(self, skipflow_result, baseline_result):
        skip = eliminate_dead_code(skipflow_result)
        base = eliminate_dead_code(baseline_result)
        assert base.live_instructions >= skip.live_instructions
        assert base.removable_branches <= skip.removable_branches

    def test_report_totals_consistent(self, skipflow_result):
        report = eliminate_dead_code(skipflow_result)
        per_method_total = sum(m.total_instructions for m in report.methods.values())
        assert per_method_total == report.live_instructions + report.dead_instructions
        assert report.total_branches >= report.removable_branches


class TestBinarySizeModel:
    def test_size_decreases_with_precision(self, skipflow_result, baseline_result):
        model = BinarySizeModel()
        assert model.estimate(skipflow_result) < model.estimate(baseline_result)

    def test_megabytes_conversion(self, skipflow_result):
        model = BinarySizeModel()
        assert model.estimate_megabytes(skipflow_result) == pytest.approx(
            model.estimate(skipflow_result) / 1_000_000.0)

    def test_custom_constants(self, skipflow_result):
        small_model = BinarySizeModel(image_base_bytes=0, class_metadata_bytes=0,
                                      method_header_bytes=1, instruction_bytes=0)
        assert small_model.estimate(skipflow_result) == skipflow_result.reachable_method_count
