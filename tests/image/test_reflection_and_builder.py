"""Tests for reflection configuration handling and the image build driver."""

import pytest

from repro.core.analysis import AnalysisConfig
from repro.image.builder import NativeImageBuilder, build_image
from repro.image.reflection import ReflectionConfig, ReflectionConfigError
from repro.lang import compile_source

SOURCE = """
class Plugin {
    void install() { }
}
class FancyPlugin extends Plugin {
    void install() { }
}
class Registry {
    Plugin active;
}
class Admin {
    static void resetPasswords() { Admin.audit(); }
    static void audit() { }
}
class Main {
    static void main() {
        Registry registry = new Registry();
    }
}
"""


def fresh_program():
    return compile_source(SOURCE, entry_points=["Main.main"])


class TestReflectionConfig:
    def test_reflective_method_becomes_root(self):
        program = fresh_program()
        config = ReflectionConfig().register_method("Admin.resetPasswords")
        added = config.apply_to(program)
        assert "Admin.resetPasswords" in added
        report = NativeImageBuilder(program, AnalysisConfig.skipflow()).build()
        assert report.result.is_method_reachable("Admin.resetPasswords")
        assert report.result.is_method_reachable("Admin.audit")

    def test_without_reflection_admin_is_dead(self):
        report = NativeImageBuilder(fresh_program(), AnalysisConfig.skipflow()).build()
        assert not report.result.is_method_reachable("Admin.resetPasswords")

    def test_reflective_field_holds_all_instantiable_subtypes(self):
        program = fresh_program()
        config = ReflectionConfig().register_field("Registry", "active")
        config.apply_to(program)
        report = NativeImageBuilder(program, AnalysisConfig.skipflow()).build()
        field_state = report.result.field_state("Registry.active")
        assert field_state.contains_type("Plugin")
        assert field_state.contains_type("FancyPlugin")
        assert field_state.contains_null

    def test_unknown_method_rejected(self):
        config = ReflectionConfig().register_method("Nope.nothing")
        with pytest.raises(ReflectionConfigError):
            config.apply_to(fresh_program())

    def test_unknown_field_rejected(self):
        config = ReflectionConfig().register_field("Registry", "missing")
        with pytest.raises(ReflectionConfigError):
            config.apply_to(fresh_program())

    def test_json_round_trip(self):
        config = ReflectionConfig()
        config.register_method("Admin.resetPasswords")
        config.register_field("Registry", "active")
        parsed = ReflectionConfig.from_json(config.to_json())
        assert parsed.methods == ["Admin.resetPasswords"]
        assert parsed.fields == [("Registry", "active")]

    def test_malformed_json_rejected(self):
        with pytest.raises(ReflectionConfigError):
            ReflectionConfig.from_json("{not json")
        with pytest.raises(ReflectionConfigError):
            ReflectionConfig.from_json('{"fields": ["oops"]}')
        with pytest.raises(ReflectionConfigError):
            ReflectionConfig.from_json('{"methods": [42]}')

    def test_duplicate_registration_is_idempotent(self):
        config = ReflectionConfig()
        config.register_method("A.m").register_method("A.m")
        config.register_field("C", "f").register_field("C", "f")
        assert config.methods == ["A.m"]
        assert config.fields == [("C", "f")]


class TestNativeImageBuilder:
    def test_report_contains_all_sections(self):
        report = build_image(fresh_program(), AnalysisConfig.skipflow(), "demo")
        assert report.benchmark == "demo"
        assert report.configuration == "SkipFlow"
        assert report.reachable_methods == report.metrics.reachable_methods
        assert report.binary_size_bytes > 0
        assert report.binary_size_megabytes == pytest.approx(
            report.binary_size_bytes / 1_000_000.0)
        assert report.total_time_seconds >= report.analysis_time_seconds

    def test_builder_with_reflection_applies_once(self):
        program = fresh_program()
        reflection = ReflectionConfig().register_method("Admin.resetPasswords")
        builder = NativeImageBuilder(program, AnalysisConfig.skipflow(),
                                     reflection=reflection)
        first = builder.build()
        second = builder.build()
        assert first.reachable_methods == second.reachable_methods

    def test_baseline_image_is_larger(self):
        skipflow = build_image(fresh_program(), AnalysisConfig.skipflow())
        baseline = build_image(fresh_program(), AnalysisConfig.baseline_pta())
        assert baseline.binary_size_bytes >= skipflow.binary_size_bytes
        assert baseline.reachable_methods >= skipflow.reachable_methods
