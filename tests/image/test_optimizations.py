"""Tests for the optimization-opportunity report (Section 6 optimizations)."""

import pytest

from repro.core.analysis import run_baseline, run_skipflow
from repro.image.optimizations import collect_optimizations
from repro.lang import compile_source

SOURCE = """
class Codec {
    int encode(int level) { return level; }
}
class FastCodec extends Codec {
    int encode(int level) { return 2; }
}
class Pipeline {
    int run(Codec codec, int level) {
        return codec.encode(level);
    }
}
class Legacy {
    static void support() { }
}
class Main {
    static void main() {
        Pipeline pipeline = new Pipeline();
        Codec codec = new FastCodec();
        pipeline.run(codec, 3);
        boolean legacy = false;
        if (legacy) { Legacy.support(); }
    }
}
"""


@pytest.fixture(scope="module")
def skipflow_report():
    return collect_optimizations(run_skipflow(compile_source(SOURCE)))


@pytest.fixture(scope="module")
def baseline_report():
    return collect_optimizations(run_baseline(compile_source(SOURCE)))


class TestConstantParameters:
    def test_constant_argument_detected(self, skipflow_report):
        constants = {(c.method, c.parameter_name): c.constant
                     for c in skipflow_report.constant_parameters}
        assert constants.get(("Pipeline.run", "level")) == 3
        assert constants.get(("FastCodec.encode", "level")) == 3

    def test_baseline_tracks_no_primitive_constants(self, baseline_report):
        assert all(c.method != "Pipeline.run" for c in baseline_report.constant_parameters)


class TestDevirtualization:
    def test_monomorphic_call_devirtualized(self, skipflow_report):
        targets = {d.target for d in skipflow_report.devirtualized_calls}
        assert "FastCodec.encode" in targets

    def test_counts_exposed_in_summary(self, skipflow_report):
        summary = skipflow_report.summary()
        assert summary["devirtualized_calls"] == skipflow_report.devirtualized_call_count
        assert summary["constant_parameters"] == skipflow_report.constant_parameter_count
        assert set(summary) == {"constant_parameters", "devirtualized_calls",
                                "inlining_candidates", "removable_instructions",
                                "removable_branches"}


class TestInliningAndDeadCode:
    def test_small_methods_are_inlining_candidates(self, skipflow_report):
        assert "FastCodec.encode" in skipflow_report.inlining_candidates
        assert skipflow_report.inlining_candidate_count >= 2

    def test_skipflow_finds_more_removable_code_than_baseline(self, skipflow_report,
                                                              baseline_report):
        assert skipflow_report.removable_instructions >= baseline_report.removable_instructions
        assert skipflow_report.removable_branches >= baseline_report.removable_branches

    def test_configuration_recorded(self, skipflow_report, baseline_report):
        assert skipflow_report.configuration == "SkipFlow"
        assert baseline_report.configuration == "PTA"
