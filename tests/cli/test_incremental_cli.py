"""CLI coverage for the incremental workflow: delta, --save-state, --resume-from."""

import pytest

from repro.cli import main as cli_main

BASE_SOURCE = """
class Base { int run() { return 1; } }
class Impl extends Base { int run() { return 2; } }
class Main {
    static void main() {
        Base b = new Impl();
        b.run();
    }
}
"""

# A monotone extension: Main.main untouched, new class + method only.
GROWN_SOURCE = BASE_SOURCE.replace(
    "class Main {",
    "class Impl2 extends Base { int run() { return 3; } }\n"
    "class Probe { static void go() { Base b = new Impl2(); b.run(); } }\n"
    "class Main {")

# A non-monotone edit: Impl.run's body changes.
CHANGED_SOURCE = BASE_SOURCE.replace("return 2", "return 7")


@pytest.fixture
def base(tmp_path):
    path = tmp_path / "base.lang"
    path.write_text(BASE_SOURCE)
    return str(path)


@pytest.fixture
def grown(tmp_path):
    path = tmp_path / "grown.lang"
    path.write_text(GROWN_SOURCE)
    return str(path)


@pytest.fixture
def changed(tmp_path):
    path = tmp_path / "changed.lang"
    path.write_text(CHANGED_SOURCE)
    return str(path)


class TestDeltaCommand:
    def test_monotone_diff_exits_zero(self, base, grown, capsys):
        assert cli_main(["delta", base, grown]) == 0
        out = capsys.readouterr().out
        assert "monotone" in out
        assert "+ Impl2" in out
        assert "+ Probe.go" in out

    def test_non_monotone_diff_exits_one_with_violations(self, base, changed,
                                                         capsys):
        assert cli_main(["delta", base, changed]) == 1
        out = capsys.readouterr().out
        assert "NON-MONOTONE" in out
        assert "Impl.run" in out and "body" in out

    def test_json_output(self, base, grown, capsys):
        import json

        assert cli_main(["delta", base, grown, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["monotone"] is True
        assert "Impl2" in payload["added_classes"]
        assert payload["violations"] == []


class TestStateFlags:
    def test_save_then_noop_resume(self, base, tmp_path, capsys):
        state_path = str(tmp_path / "solve.state")
        assert cli_main(["analyze", base, "--save-state", state_path]) == 0
        out = capsys.readouterr().out
        assert "mode:               cold" in out
        assert state_path in out

        assert cli_main(["analyze", base, "--resume-from", state_path]) == 0
        out = capsys.readouterr().out
        assert "warm (resumed)" in out

    def test_resume_over_monotone_edit_is_warm(self, base, grown, tmp_path,
                                               capsys):
        state_path = str(tmp_path / "solve.state")
        cli_main(["analyze", base, "--save-state", state_path])
        capsys.readouterr()
        assert cli_main(["analyze", grown, "--entry", "Main.main",
                         "--entry", "Probe.go",
                         "--resume-from", state_path]) == 0
        out = capsys.readouterr().out
        assert "warm (resumed)" in out
        assert "reachable methods:  4" in out

    def test_resume_over_non_monotone_edit_falls_back(self, base, changed,
                                                      tmp_path, capsys):
        state_path = str(tmp_path / "solve.state")
        cli_main(["analyze", base, "--save-state", state_path])
        capsys.readouterr()
        assert cli_main(["analyze", changed,
                         "--resume-from", state_path]) == 0
        captured = capsys.readouterr()
        assert "cold (resume fell back)" in captured.out
        assert "monotone" in captured.err

    def test_compare_is_rejected_with_state_flags(self, base, tmp_path,
                                                  capsys):
        state_path = str(tmp_path / "solve.state")
        assert cli_main(["analyze", base, "--compare",
                         "--save-state", state_path]) == 2
        assert "--compare" in capsys.readouterr().err

    def test_state_flags_need_an_engine_analysis(self, base, tmp_path,
                                                 capsys):
        state_path = str(tmp_path / "solve.state")
        assert cli_main(["analyze", base, "--analysis", "cha",
                         "--save-state", state_path]) == 2
        assert "call graph only" in capsys.readouterr().err

    def test_corrupt_snapshot_is_a_clean_error(self, base, tmp_path, capsys):
        state_path = tmp_path / "corrupt.state"
        state_path.write_bytes(b"garbage")
        assert cli_main(["analyze", base,
                         "--resume-from", str(state_path)]) == 2
        assert "snapshot" in capsys.readouterr().err
