"""The --scheduling / --saturation-policy CLI flags."""

import pytest

from repro.cli import build_parser, main as cli_main

SOURCE = """
class Config {
    boolean isFeatureEnabled() { return false; }
}
class Feature {
    void start() { }
}
class Main {
    static void main() {
        Config config = new Config();
        if (config.isFeatureEnabled()) {
            Feature feature = new Feature();
            feature.start();
        }
    }
}
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "app.lang"
    path.write_text(SOURCE)
    return str(path)


class TestParser:
    def test_scheduling_offers_registered_policies(self):
        args = build_parser().parse_args(
            ["analyze", "app.lang", "--scheduling", "degree"])
        assert args.scheduling == "degree"

    def test_saturation_policy_choices(self):
        args = build_parser().parse_args(
            ["analyze", "app.lang", "--saturation-policy", "declared-type",
             "--saturation-threshold", "8"])
        assert args.saturation_policy == "declared-type"
        assert args.saturation_threshold == 8

    def test_unknown_scheduling_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "app.lang", "--scheduling", "zigzag"])

    def test_compare_carries_the_flags_too(self):
        args = build_parser().parse_args(
            ["compare", "app.lang", "pta", "skipflow",
             "--scheduling", "lifo"])
        assert args.scheduling == "lifo"


class TestAnalyze:
    def test_scheduling_flag_preserves_results(self, source, capsys):
        assert cli_main(["analyze", source]) == 0
        plain = capsys.readouterr().out
        assert cli_main(["analyze", source, "--scheduling", "lifo"]) == 0
        scheduled = capsys.readouterr().out
        # Scheduling changes effort only; the printed metrics are timings
        # aside identical.
        strip = lambda text: [line for line in text.splitlines()  # noqa: E731
                              if "time" not in line]
        assert strip(plain) == strip(scheduled)

    def test_saturation_policy_needs_threshold(self, source, capsys):
        assert cli_main(["analyze", source,
                         "--saturation-policy", "declared-type"]) == 2
        assert "needs a threshold" in capsys.readouterr().err

    def test_saturation_policy_with_threshold_runs(self, source, capsys):
        assert cli_main(["analyze", source,
                         "--saturation-policy", "declared-type",
                         "--saturation-threshold", "8"]) == 0
        assert "reachable methods" in capsys.readouterr().out

    def test_compare_mode_applies_flags_to_both_columns(self, source, capsys):
        assert cli_main(["analyze", source, "--compare",
                         "--scheduling", "degree"]) == 0
        output = capsys.readouterr().out
        assert "[PTA]" in output and "[SkipFlow]" in output

    def test_call_graph_analysis_rejects_scheduling(self, source, capsys):
        assert cli_main(["analyze", source, "--analysis", "cha",
                         "--scheduling", "lifo"]) == 2
        assert "scheduling" in capsys.readouterr().err


class TestCompare:
    def test_ladder_with_scheduling(self, source, capsys):
        assert cli_main(["compare", source, "--scheduling", "degree"]) == 0
        assert "reachable methods" in capsys.readouterr().out

    def test_call_graph_only_columns_reject_kernel_flags(self, source, capsys):
        assert cli_main(["compare", source, "cha", "rta",
                         "--scheduling", "lifo"]) == 2
        assert "scheduling" in capsys.readouterr().err
