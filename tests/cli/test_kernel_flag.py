"""The --kernel CLI flag: parsing, bit-identical output, fuzz plumbing."""

import pytest

from repro.cli import build_parser, main as cli_main

SOURCE = """
class Animal {
    int speak() { return 0; }
}
class Dog extends Animal {
    int speak() { return 1; }
}
class Main {
    static void main() {
        Animal pet = new Dog();
        pet.speak();
    }
}
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "app.lang"
    path.write_text(SOURCE)
    return str(path)


class TestParser:
    def test_analyze_accepts_the_registered_kernels(self):
        args = build_parser().parse_args(
            ["analyze", "app.lang", "--kernel", "arena"])
        assert args.kernel == "arena"

    def test_unknown_kernel_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "app.lang", "--kernel", "vectorized"])

    def test_check_and_compare_carry_the_flag_too(self):
        for head in (["check", "app.lang"],
                     ["compare", "app.lang", "pta", "skipflow"]):
            args = build_parser().parse_args(head + ["--kernel", "arena"])
            assert args.kernel == "arena"

    def test_fuzz_kernel_repeats_into_a_list(self):
        args = build_parser().parse_args(
            ["fuzz", "--cases", "1",
             "--kernel", "object", "--kernel", "arena"])
        assert args.kernel == ["object", "arena"]


class TestAnalyze:
    def test_arena_kernel_preserves_results(self, source, capsys):
        assert cli_main(["analyze", source]) == 0
        plain = capsys.readouterr().out
        assert cli_main(["analyze", source, "--kernel", "arena"]) == 0
        arena = capsys.readouterr().out
        # The kernel changes throughput, never results: everything but
        # the timing lines must match byte for byte.
        strip = lambda text: [line for line in text.splitlines()  # noqa: E731
                              if "time" not in line]
        assert strip(plain) == strip(arena)

    def test_compare_mode_accepts_the_kernel(self, source, capsys):
        assert cli_main(["analyze", source, "--compare",
                         "--kernel", "arena"]) == 0
        output = capsys.readouterr().out
        assert "[PTA]" in output and "[SkipFlow]" in output

    def test_check_audits_pass_under_the_arena_kernel(self, source, capsys):
        assert cli_main(["check", source, "--audit",
                         "--kernel", "arena"]) == 0
        assert "audit" in capsys.readouterr().out.lower()
