"""CLI surface of the wire schema (`analyze --json`) and the daemon entry.

``analyze --json`` must print exactly the versioned payload the daemon
serves (one serializer, two transports), and ``repro serve`` must expose
the daemon knobs.  The daemon loop itself is covered end-to-end in
``tests/service/test_daemon.py``; here only the parser wiring and the
flag-compatibility rules are in scope.
"""

import json

import pytest

from repro.api.report import SCHEMA_VERSION, AnalysisReport
from repro.cli import build_parser, main as cli_main

SOURCE = """
class Config {
    boolean isFeatureEnabled() { return false; }
}
class Main {
    static void main() {
        Config config = new Config();
        config.isFeatureEnabled();
    }
}
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "app.lang"
    path.write_text(SOURCE)
    return str(path)


class TestAnalyzeJson:
    def test_json_prints_the_versioned_wire_payload(self, source, capsys):
        assert cli_main(["analyze", source, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["analyzer"] == "skipflow"
        assert payload["metrics"]["reachable_methods"] == 2
        # The printed payload is a loadable report: the CLI and the daemon
        # share one serializer, round-trip included.
        assert AnalysisReport.from_dict(payload).to_dict() == payload

    def test_json_respects_analysis_selection(self, source, capsys):
        assert cli_main(["analyze", source, "--json",
                         "--analysis", "cha"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analyzer"] == "cha"
        assert payload["solver_stats"] is None

    def test_json_output_is_deterministic(self, source, capsys):
        cli_main(["analyze", source, "--json"])
        first = json.loads(capsys.readouterr().out)
        cli_main(["analyze", source, "--json"])
        second = json.loads(capsys.readouterr().out)
        # Everything but the wall-clock metric is identical across runs.
        for payload in (first, second):
            payload["metrics"].pop("analysis_time_seconds")
        assert first == second

    @pytest.mark.parametrize("flag", [
        ["--compare"], ["--optimizations"], ["--list-unreachable"],
        ["--save-state", "x.state"], ["--resume-from", "x.state"]])
    def test_json_rejects_incompatible_flags(self, source, capsys, flag):
        assert cli_main(["analyze", source, "--json", *flag]) == 2
        assert "--json cannot be combined" in capsys.readouterr().err


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.max_sessions == 8
        assert args.spill_dir is None
        assert args.func.__name__ == "_cmd_serve"

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--max-sessions", "2", "--spill-dir", "/tmp/spill"])
        assert (args.host, args.port, args.max_sessions, args.spill_dir) == \
            ("0.0.0.0", 0, 2, "/tmp/spill")
