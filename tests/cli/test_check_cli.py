"""The ``repro check`` subcommand, ``analyze --audit``, and ``delta --check``.

Exit-code contract under test: lint warnings alone exit 0 (advisory),
``--strict`` turns any finding into exit 7, ERROR findings (roots naming
nothing, failed audits) exit 7 on their own, and a baseline file silences
by stable id.
"""

import json

import pytest

from repro.api.errors import EXIT_CHECK
from repro.checks import BASELINE_VERSION
from repro.cli import main as cli_main

CLEAN_SOURCE = """
class Greeter {
    int greet() { return 1; }
}
class Main {
    static void main() {
        Greeter greeter = new Greeter();
        greeter.greet();
    }
}
"""

# One planted lint warning: a method no root reaches.
WARNING_SOURCE = CLEAN_SOURCE + """
class Attic {
    void dusty() { }
}
"""

EDITED_SOURCE = CLEAN_SOURCE.replace("return 1", "return 5")


@pytest.fixture
def clean(tmp_path):
    path = tmp_path / "clean.lang"
    path.write_text(CLEAN_SOURCE)
    return str(path)


@pytest.fixture
def warning(tmp_path):
    path = tmp_path / "warning.lang"
    path.write_text(WARNING_SOURCE)
    return str(path)


class TestCheckCommand:
    def test_clean_source_exits_zero(self, clean, capsys):
        assert cli_main(["check", clean]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_warnings_are_advisory(self, warning, capsys):
        assert cli_main(["check", warning]) == 0
        output = capsys.readouterr().out
        assert "IR002" in output and "Attic.dusty" in output

    def test_strict_turns_warnings_into_exit_7(self, warning):
        assert cli_main(["check", warning, "--strict"]) == EXIT_CHECK

    def test_bad_root_is_an_error_exit_7(self, clean, capsys):
        assert cli_main(["check", clean, "--entry", "Main.nope"]) == EXIT_CHECK
        assert "IR006" in capsys.readouterr().out

    def test_json_shape(self, warning, capsys):
        assert cli_main(["check", warning, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["warning"] >= 1
        assert all("id" in diag for diag in payload["diagnostics"])

    def test_baseline_suppresses_by_id(self, warning, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"version": BASELINE_VERSION, "suppress": ["IR002"]}))
        code = cli_main(["check", warning, "--strict",
                         "--baseline", str(baseline)])
        assert code == 0

    def test_audit_flag_runs_the_post_solve_audits(self, clean, capsys):
        assert cli_main(["check", clean, "--audit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 0

    def test_list_prints_the_catalog(self, capsys):
        assert cli_main(["check", "--list"]) == 0
        output = capsys.readouterr().out
        for token in ("IR001", "AUD006", "lint", "audit"):
            assert token in output

    def test_source_required_without_list(self, capsys):
        assert cli_main(["check"]) == 2
        assert "source" in capsys.readouterr().err


class TestAnalyzeAudit:
    def test_audit_clean_after_analyze(self, clean, capsys):
        assert cli_main(["analyze", clean, "--analysis", "skipflow",
                         "--audit"]) == 0
        assert "audit" in capsys.readouterr().out

    def test_audit_rejected_with_json(self, clean, capsys):
        assert cli_main(["analyze", clean, "--audit", "--json"]) == 2
        assert "repro check --audit" in capsys.readouterr().err


class TestDeltaCheck:
    def test_monotone_extension_reports_no_new_diagnostics(
            self, clean, tmp_path, capsys):
        new = tmp_path / "new.lang"
        new.write_text(CLEAN_SOURCE + """
class EagerGreeter extends Greeter {
    int greet() { return 2; }
}
""")
        assert cli_main(["delta", clean, str(new), "--check"]) == 0
        assert "none" in capsys.readouterr().out

    def test_edit_introducing_dead_method_is_reported(
            self, clean, tmp_path, capsys):
        new = tmp_path / "new.lang"
        new.write_text(WARNING_SOURCE)
        assert cli_main(["delta", clean, str(new), "--check"]) == 0
        output = capsys.readouterr().out
        assert "IR002" in output and "Attic.dusty" in output

    def test_check_json_lists_new_diagnostics(self, clean, tmp_path, capsys):
        new = tmp_path / "new.lang"
        new.write_text(WARNING_SOURCE)
        assert cli_main(["delta", clean, str(new), "--check",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(d["id"] == "IR002" for d in payload["new_diagnostics"])
