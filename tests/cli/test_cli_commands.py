"""Subprocess-free CLI coverage: parser wiring and command handlers.

Every test drives :func:`repro.cli.build_parser` / :func:`repro.cli.main`
directly (no subprocess), covering ``analyze --analysis``, the N-way
``compare`` command, ``callgraph``, ``pvpg``, ``bench --gc``, and the
centralized root-resolution errors.
"""

import pytest

from repro.cli import build_parser, main as cli_main
from repro.engine import ProgramStore, ResultCache

SOURCE = """
class Config {
    boolean isFeatureEnabled() { return false; }
}
class Feature {
    void start() { }
}
class Unused {
    void never() { }
}
class Main {
    static void main() {
        Config config = new Config();
        if (config.isFeatureEnabled()) {
            Feature feature = new Feature();
            feature.start();
        }
    }
}
"""

NO_ENTRY_SOURCE = """
class Lonely {
    void orphan() { }
}
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "app.lang"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def orphan_source(tmp_path):
    path = tmp_path / "orphan.lang"
    path.write_text(NO_ENTRY_SOURCE)
    return str(path)


class TestParser:
    def test_analysis_flag_offers_every_registered_analyzer(self):
        args = build_parser().parse_args(
            ["analyze", "app.lang", "--analysis", "rta"])
        assert args.analysis == "rta"
        assert args.func.__name__ == "_cmd_analyze"

    def test_compare_defaults_to_the_precision_ladder(self):
        args = build_parser().parse_args(["compare", "app.lang"])
        assert args.analyses == ["cha", "rta", "pta", "skipflow"]

    def test_legacy_config_flag_still_parses(self):
        args = build_parser().parse_args(
            ["analyze", "app.lang", "--config", "pta"])
        assert args.config == "pta"

    def test_bench_gc_flag(self):
        args = build_parser().parse_args(["bench", "--gc", "--cache-dir", "x"])
        assert args.gc and args.cache_dir == "x"


class TestAnalyze:
    def test_analysis_engine_config(self, source, capsys):
        assert cli_main(["analyze", source, "--analysis", "pta"]) == 0
        output = capsys.readouterr().out
        assert "[PTA]" in output and "reachable methods" in output

    def test_analysis_call_graph_baseline(self, source, capsys):
        assert cli_main(["analyze", source, "--analysis", "cha"]) == 0
        output = capsys.readouterr().out
        assert "[cha]" in output and "call edges" in output

    def test_call_graph_baseline_lists_unreachable(self, source, capsys):
        assert cli_main(["analyze", source, "--analysis", "rta",
                         "--list-unreachable"]) == 0
        # RTA cannot prune the predicate-guarded feature, but the entirely
        # uncalled class is dead even for it.
        output = capsys.readouterr().out
        assert "Unused.never" in output
        assert "Feature.start" not in output

    def test_skipflow_prunes_the_guarded_feature(self, source, capsys):
        assert cli_main(["analyze", source, "--analysis", "skipflow",
                         "--list-unreachable"]) == 0
        output = capsys.readouterr().out
        assert "[SkipFlow]" in output and "Feature.start" in output

    def test_optimizations_rejected_for_call_graph_baselines(
            self, source, capsys):
        assert cli_main(["analyze", source, "--analysis", "cha",
                         "--optimizations"]) == 2
        assert "--optimizations" in capsys.readouterr().err

    def test_saturation_threshold_rejected_for_call_graph_baselines(
            self, source, capsys):
        """Consistent with callgraph/pvpg/compare: loud error, not a silent
        no-op sweep."""
        assert cli_main(["analyze", source, "--analysis", "cha",
                         "--saturation-threshold", "4"]) == 2
        assert "saturation_threshold" in capsys.readouterr().err

    def test_no_entry_point_is_a_clean_error(self, orphan_source, capsys):
        # Root-resolution failures exit 3 (EXIT_NO_ENTRY), distinct from
        # usage errors, per the repro.api.errors taxonomy.
        assert cli_main(["analyze", orphan_source]) == 3
        error = capsys.readouterr().err
        assert "no entry point" in error and "Main.main" in error

    def test_unknown_entry_is_a_clean_error(self, source, capsys):
        assert cli_main(["analyze", source, "--entry", "Ghost.main"]) == 3
        assert "Ghost.main" in capsys.readouterr().err

    def test_conflicting_analysis_and_config_flags_rejected(
            self, source, capsys):
        assert cli_main(["analyze", source, "--analysis", "cha",
                         "--config", "pta"]) == 2
        assert "conflicting flags" in capsys.readouterr().err

    def test_matching_analysis_and_config_flags_accepted(self, source, capsys):
        assert cli_main(["analyze", source, "--analysis", "pta",
                         "--config", "pta"]) == 0
        assert "[PTA]" in capsys.readouterr().out


class TestCompare:
    def test_default_ladder(self, source, capsys):
        assert cli_main(["compare", source]) == 0
        output = capsys.readouterr().out
        for column in ("cha", "rta", "pta", "skipflow"):
            assert column in output
        assert "reachable methods" in output

    def test_explicit_analyses(self, source, capsys):
        assert cli_main(["compare", source, "pta", "skipflow"]) == 0
        output = capsys.readouterr().out
        header = output.splitlines()[2]
        assert "pta" in header and "skipflow" in header
        assert "cha" not in header and "rta" not in header

    def test_unknown_analysis_is_a_clean_error(self, source, capsys):
        assert cli_main(["compare", source, "pta", "bogus"]) == 2
        assert "unknown analysis" in capsys.readouterr().err

    def test_non_ladder_order_warns_on_stderr(self, source, capsys):
        assert cli_main(["compare", source, "skipflow", "pta"]) == 0
        assert "not monotone" in capsys.readouterr().err

    def test_saturation_threshold_works_with_the_default_ladder(
            self, source, capsys):
        """The cutoff routes to the engine columns; cha/rta are unaffected."""
        assert cli_main(["compare", source, "--saturation-threshold", "4"]) == 0
        assert "skipflow" in capsys.readouterr().out

    def test_saturation_threshold_with_only_call_graph_columns_errors(
            self, source, capsys):
        assert cli_main(["compare", source, "cha", "rta",
                         "--saturation-threshold", "4"]) == 2
        assert "not supported" in capsys.readouterr().err


class TestCallGraphAndPvpg:
    def test_callgraph_to_file(self, source, tmp_path):
        output = tmp_path / "graph.dot"
        assert cli_main(["callgraph", source, "--output", str(output)]) == 0
        assert output.read_text().startswith("digraph callgraph")

    def test_callgraph_with_named_analysis(self, source, capsys):
        assert cli_main(["callgraph", source, "--analysis", "pta"]) == 0
        assert "digraph callgraph" in capsys.readouterr().out

    def test_callgraph_rejects_call_graph_only_analyzers(self, source, capsys):
        assert cli_main(["callgraph", source, "--analysis", "cha"]) == 2
        assert "call graph only" in capsys.readouterr().err

    def test_pvpg_for_method(self, source, capsys):
        assert cli_main(["pvpg", source, "--method", "Main.main"]) == 0
        assert "cluster_Main.main" in capsys.readouterr().out

    def test_pvpg_rejects_call_graph_only_analyzers(self, source, capsys):
        assert cli_main(["pvpg", source, "--analysis", "rta"]) == 2
        assert "call graph only" in capsys.readouterr().err


class TestBenchGc:
    def test_gc_requires_cache_dir(self, capsys):
        assert cli_main(["bench", "--gc"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_gc_drops_only_stale_versions(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        current = ResultCache(cache_dir)
        current.put("aa" * 16, {"payload_version": 2})
        stale = ResultCache(cache_dir, code_version="feedfacedeadbeef")
        stale.put("bb" * 16, {"payload_version": 1})
        store = ProgramStore(cache_dir / "programs",
                             code_version=current.code_version)
        (store.directory / "feedfacedeadbeef-blob.pickle").write_bytes(b"x")
        (store.directory / "preversioning.pickle").write_bytes(b"x")
        snapshots = cache_dir / "snapshots"
        snapshots.mkdir()
        (snapshots / "feedfacedeadbeef-old.state").write_bytes(b"x")

        assert cli_main(["bench", "--gc", "--cache-dir", str(cache_dir),
                         "--suite", "DaCapo"]) == 0
        output = capsys.readouterr().out
        assert ("removed 1 stale result entries, 2 stale IR blobs "
                "(pickles and arena buffers), and 1 stale snapshots") in output
        assert "reclaimed" in output and "bytes" in output
        assert list(snapshots.glob("*.state")) == []
        assert current.contains("aa" * 16)
        assert not stale.contains("bb" * 16)
        assert list(store.directory.glob("*.pickle")) == []
