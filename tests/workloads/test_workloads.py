"""Tests for the synthetic workload generator, patterns, and suite definitions."""

import pytest

from repro.core.analysis import run_baseline, run_skipflow
from repro.ir.builder import ProgramBuilder
from repro.ir.validate import validate_program
from repro.workloads.generator import (
    GuardedModuleSpec,
    generate_benchmark,
    spec_from_reduction,
)
from repro.workloads.patterns import GUARD_PATTERNS, add_guarded_module, add_library_module
from repro.workloads.suites import (
    all_suites,
    dacapo_suite,
    microservices_suite,
    renaissance_suite,
    suite_by_name,
)


class TestLibraryModule:
    def test_module_has_requested_method_count(self):
        pb = ProgramBuilder()
        handle = add_library_module(pb, "Demo", 20)
        assert handle.method_count == 20
        program = pb.build()
        for name in handle.method_names:
            assert program.has_method(name)

    def test_module_program_is_valid(self):
        pb = ProgramBuilder()
        handle = add_library_module(pb, "Demo", 12)
        pb.declare_class("Main")
        mb = pb.method("Main", "main", is_static=True)
        mb.invoke_static(handle.entry_class, handle.entry_method)
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        program = pb.build()
        validate_program(program)

    def test_module_fully_reachable_from_entry(self):
        pb = ProgramBuilder()
        handle = add_library_module(pb, "Demo", 15)
        pb.declare_class("Main")
        mb = pb.method("Main", "main", is_static=True)
        mb.invoke_static(handle.entry_class, handle.entry_method)
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        result = run_skipflow(pb.build())
        workers = [name for name in handle.method_names if "Worker" in name]
        assert workers
        for worker in workers:
            assert result.is_method_reachable(worker)

    def test_minimum_size_enforced(self):
        pb = ProgramBuilder()
        handle = add_library_module(pb, "Tiny", 1)
        assert handle.method_count >= 5


class TestGuardPatterns:
    @pytest.mark.parametrize("pattern", sorted(GUARD_PATTERNS))
    def test_guarded_module_dead_for_skipflow_live_for_baseline(self, pattern):
        pb = ProgramBuilder()
        driver = add_guarded_module(pb, "Lib", 10, pattern)
        pb.declare_class("Main")
        mb = pb.method("Main", "main", is_static=True)
        driver_class, driver_method = driver.split(".", 1)
        mb.invoke_static(driver_class, driver_method)
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        program = pb.build()
        validate_program(program)

        skipflow = run_skipflow(program)
        baseline = run_baseline(program)
        entry = "LibEntry.enter"
        assert not skipflow.is_method_reachable(entry), pattern
        assert baseline.is_method_reachable(entry), pattern
        # The guard driver itself is reachable in both configurations.
        assert skipflow.is_method_reachable(driver)

    def test_unknown_pattern_rejected(self):
        pb = ProgramBuilder()
        with pytest.raises(ValueError):
            add_guarded_module(pb, "X", 10, "no_such_pattern")


class TestGenerator:
    def test_spec_from_reduction_sizes(self):
        spec = spec_from_reduction("demo", "suite", total_methods=200, reduction_percent=10.0)
        assert spec.guarded_methods == pytest.approx(20, abs=6)
        assert 0.05 < spec.expected_reduction_fraction < 0.2
        assert spec.suite == "suite"

    def test_zero_reduction_spec_has_no_guarded_modules(self):
        spec = spec_from_reduction("tiny", "suite", total_methods=100, reduction_percent=0.0)
        assert spec.guarded_modules == ()

    def test_generated_program_is_valid_and_sized(self):
        spec = spec_from_reduction("demo-app", "suite", total_methods=120,
                                   reduction_percent=15.0)
        program = generate_benchmark(spec)
        validate_program(program)
        assert abs(len(program.methods) - spec.expected_total_methods) <= 5
        assert program.entry_points == ["Main.main"]

    def test_generation_is_deterministic(self):
        spec = spec_from_reduction("demo-app", "suite", total_methods=90,
                                   reduction_percent=12.0)
        first = generate_benchmark(spec)
        second = generate_benchmark(spec)
        assert sorted(first.methods) == sorted(second.methods)

    def test_guarded_module_spec_validates_pattern(self):
        with pytest.raises(ValueError):
            GuardedModuleSpec("bogus", 10)

    def test_reduction_close_to_requested(self):
        spec = spec_from_reduction("calibration", "suite", total_methods=300,
                                   reduction_percent=20.0)
        program = generate_benchmark(spec)
        skipflow = run_skipflow(program)
        baseline = run_baseline(program)
        reduction = 100.0 * (1 - skipflow.reachable_method_count
                             / baseline.reachable_method_count)
        assert reduction == pytest.approx(20.0, abs=6.0)


class TestSuites:
    def test_suite_sizes_match_paper(self):
        assert len(dacapo_suite()) == 8
        assert len(microservices_suite()) == 9
        assert len(renaissance_suite()) == 18

    def test_all_suites_keys(self):
        suites = all_suites()
        assert set(suites) == {"DaCapo", "Microservices", "Renaissance"}

    def test_suite_by_name_case_insensitive(self):
        assert suite_by_name("dacapo") == dacapo_suite()
        with pytest.raises(KeyError):
            suite_by_name("spec2006")

    def test_paper_metadata_attached(self):
        sunflow = next(s for s in dacapo_suite() if s.name == "sunflow")
        assert sunflow.paper_reduction_percent == pytest.approx(52.3)
        assert sunflow.paper_reachable_thousands == pytest.approx(56.7)

    def test_scale_controls_size(self):
        small = dacapo_suite(scale=1.0)
        large = dacapo_suite(scale=3.0)
        for s, l in zip(small, large):
            assert l.expected_total_methods > s.expected_total_methods
