"""Shape and analysis invariants of the composed multi-hierarchy workloads."""

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis, run_baseline, run_skipflow
from repro.core.solver import SkipFlowSolver
from repro.ir.builder import ProgramBuilder
from repro.ir.validate import validate_program
from repro.workloads.generator import BenchmarkSpec, HierarchySpec, generate_benchmark
from repro.workloads.patterns import add_composed_hierarchies_module
from repro.workloads.suites import WIDE_HIERARCHY_SUITE, wide_hierarchy_suite

SHAPES = ((1, 8, 3, 8), (2, 3, 2, 8))


def _composed_program(shapes=SHAPES):
    pb = ProgramBuilder()
    handle = add_composed_hierarchies_module(pb, "Mix", shapes)
    pb.declare_class("Main")
    mb = pb.method("Main", "main", is_static=True)
    mb.invoke_static(*handle.driver.split("."))
    mb.return_void()
    pb.finish_method(mb)
    pb.add_entry_point("Main.main")
    return pb.build(), handle


def _composed_spec(name="composed-test"):
    return BenchmarkSpec(
        name=name, suite="test", core_methods=20, guarded_modules=(),
        hierarchies=tuple(HierarchySpec(depth=d, fanout=f, call_sites=c,
                                        guarded_methods=g)
                          for d, f, c, g in SHAPES),
        compose_hierarchies=True)


class TestComposedModule:
    def test_shape(self):
        program, handle = _composed_program()
        validate_program(program)
        assert handle.hierarchy_count == 2
        assert handle.mixed_leaf_count == 8 + 9
        for name in handle.method_names:
            assert program.has_method(name)

    def test_hierarchies_share_the_common_root(self):
        program, handle = _composed_program()
        hierarchy = program.hierarchy
        for sub in handle.hierarchies:
            assert hierarchy.is_subtype(sub.root_class, handle.common_class)

    def test_mixed_field_interleaves_every_leaf_set(self):
        """The router field must end up holding the union of the leaf sets —
        megamorphism neither hierarchy produces alone."""
        program, handle = _composed_program()
        solver = SkipFlowSolver(program, AnalysisConfig.skipflow())
        solver.solve()
        mixed = solver.pvpg.field_flows[f"{handle.router_class}.mixed"]
        leaves = {leaf for sub in handle.hierarchies
                  for leaf in sub.leaf_classes}
        assert set(mixed.state.reference_types) == leaves

    def test_exact_analysis_proves_cross_payloads_dead(self):
        program, handle = _composed_program()
        result = run_skipflow(program)
        for sub in handle.hierarchies:
            assert not result.is_method_reachable(sub.payload_entry)
            assert not result.is_method_reachable(f"{sub.rare_class}.run")
        baseline = run_baseline(program)
        for sub in handle.hierarchies:
            assert baseline.is_method_reachable(sub.payload_entry)

    def test_saturating_the_mixed_field_reinflates_cross_payloads(self):
        program, handle = _composed_program()
        saturated = SkipFlowAnalysis(
            program,
            AnalysisConfig.skipflow().with_saturation_threshold(4)).run()
        assert saturated.stats.saturated_flows > 0
        for sub in handle.hierarchies:
            assert saturated.is_method_reachable(sub.payload_entry)

    def test_hierarchy_count_bounds(self):
        pb = ProgramBuilder()
        with pytest.raises(ValueError, match="2-4"):
            add_composed_hierarchies_module(pb, "Bad", ((1, 4, 2, 8),))
        with pytest.raises(ValueError, match="2-4"):
            add_composed_hierarchies_module(pb, "Bad", ((1, 4, 2, 8),) * 5)


class TestComposedSpec:
    def test_exact_method_model(self):
        spec = _composed_spec()
        program = generate_benchmark(spec)
        validate_program(program)
        assert len(program.methods) == spec.expected_total_methods

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="2-4"):
            BenchmarkSpec(name="bad", suite="test", core_methods=10,
                          guarded_modules=(),
                          hierarchies=(HierarchySpec(depth=1, fanout=4),),
                          compose_hierarchies=True)

    def test_generation_is_deterministic(self):
        assert (sorted(generate_benchmark(_composed_spec()).methods)
                == sorted(generate_benchmark(_composed_spec()).methods))

    def test_composed_flag_changes_the_program(self):
        composed = generate_benchmark(_composed_spec())
        independent = generate_benchmark(
            BenchmarkSpec(name="composed-test", suite="test", core_methods=20,
                          guarded_modules=(),
                          hierarchies=_composed_spec().hierarchies))
        assert sorted(composed.methods) != sorted(independent.methods)


class TestSuiteIntegration:
    def test_wide_suite_contains_composed_specs(self):
        suite = wide_hierarchy_suite()
        composed = [spec for spec in suite if spec.compose_hierarchies]
        assert len(composed) >= 3
        assert {len(spec.hierarchies) for spec in composed} >= {2, 3, 4}
        for spec in composed:
            assert spec.suite == WIDE_HIERARCHY_SUITE

    def test_composed_suite_specs_have_exact_method_model(self):
        spec = next(s for s in wide_hierarchy_suite() if s.compose_hierarchies)
        assert (len(generate_benchmark(spec).methods)
                == spec.expected_total_methods)
