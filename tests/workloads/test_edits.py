"""Edit-sequence workloads: anchors, determinism, and monotonicity."""

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.engine.cache import hash_dataclass
from repro.ir.delta import diff_programs
from repro.workloads.edits import (
    EditScriptSpec,
    EditStepSpec,
    build_edit_delta,
    default_edit_script,
    edit_anchor,
    edit_deltas,
)
from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    HierarchySpec,
    generate_benchmark,
    spec_from_reduction,
)

PLAIN_SPEC = spec_from_reduction(name="edit-plain", suite="test",
                                 total_methods=70, reduction_percent=10.0)
WIDE_SPEC = BenchmarkSpec(
    name="edit-wide", suite="test", core_methods=20, guarded_modules=(),
    hierarchies=(HierarchySpec(depth=1, fanout=6, call_sites=2),))
COMPOSED_SPEC = BenchmarkSpec(
    name="edit-composed", suite="test", core_methods=20,
    guarded_modules=(GuardedModuleSpec("boolean_flag", 8),),
    hierarchies=(HierarchySpec(depth=1, fanout=6, call_sites=2),
                 HierarchySpec(depth=1, fanout=4, call_sites=2)),
    compose_hierarchies=True)

ALL_SPECS = (PLAIN_SPEC, WIDE_SPEC, COMPOSED_SPEC)


class TestAnchors:
    def test_wide_anchor_targets_the_registry(self):
        anchor = edit_anchor(WIDE_SPEC)
        assert anchor.root_class == "Edit_wideHier0Node"
        assert anchor.container_class == "Edit_wideHier0Registry"
        assert anchor.field_name == "current"

    def test_composed_anchor_targets_the_router(self):
        anchor = edit_anchor(COMPOSED_SPEC)
        assert anchor.root_class == "Edit_composedMixCommon"
        assert anchor.container_class == "Edit_composedMixRouter"
        assert anchor.field_name == "mixed"

    def test_plain_anchor_targets_the_core_module(self):
        anchor = edit_anchor(PLAIN_SPEC)
        assert anchor.root_class == "Edit_plainCore0Base"
        assert anchor.field_name == "handler"

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_anchors_exist_in_the_generated_program(self, spec):
        program = generate_benchmark(spec)
        anchor = edit_anchor(spec)
        assert anchor.root_class in program.hierarchy
        assert anchor.container_class in program.hierarchy
        assert anchor.field_name in program.hierarchy.get(
            anchor.container_class).fields


class TestScripts:
    def test_default_script_rotates_monotone_kinds(self):
        script = default_edit_script(WIDE_SPEC, steps=4)
        assert [step.kind for step in script.steps] == [
            "add-variant", "add-dispatch", "add-guarded-module",
            "add-variant"]
        assert script.name == "edit-wide+4edits"

    def test_prefix_truncates_and_hashes_distinctly(self):
        script = default_edit_script(WIDE_SPEC, steps=3)
        hashes = {hash_dataclass(script.prefix(count))
                  for count in range(4)}
        assert len(hashes) == 4
        with pytest.raises(ValueError, match="out of range"):
            script.prefix(4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown edit kind"):
            EditStepSpec(kind="rewrite-world", index=0)

    def test_script_spec_is_hashable_like_a_benchmark_spec(self):
        script = EditScriptSpec(base=WIDE_SPEC,
                                steps=(EditStepSpec("add-variant", 0),))
        assert hash_dataclass(script) == hash_dataclass(script)
        assert hash_dataclass(script) != hash_dataclass(
            EditScriptSpec(base=WIDE_SPEC))


class TestDeltas:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_monotone_kinds_apply_monotonically(self, spec):
        program = generate_benchmark(spec)
        for delta in edit_deltas(default_edit_script(spec, steps=3)):
            applied = delta.apply_to(program, require_monotone=True)
            assert applied.monotone

    def test_deltas_are_deterministic(self):
        step = EditStepSpec("add-variant", 2)
        first = generate_benchmark(WIDE_SPEC)
        second = generate_benchmark(WIDE_SPEC)
        build_edit_delta(WIDE_SPEC, step).apply_to(first)
        build_edit_delta(WIDE_SPEC, step).apply_to(second)
        assert diff_programs(first, second).is_empty

    def test_touch_existing_is_non_monotone(self):
        program = generate_benchmark(WIDE_SPEC)
        delta = build_edit_delta(WIDE_SPEC, EditStepSpec("touch-existing", 0))
        assert not delta.is_monotone_for(program)

    def test_add_variant_reaches_every_dispatch_site(self):
        program = generate_benchmark(WIDE_SPEC)
        step = EditStepSpec("add-variant", 0)
        build_edit_delta(WIDE_SPEC, step).apply_to(
            program, require_monotone=True)
        result = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
        assert "Edit_wideEditVariant0.run" in result.reachable_methods
        # The variant flows into the shared registry field, so the existing
        # dispatch sites must have linked its override.
        targets = result.call_targets("Edit_wideHier0Registry.dispatch0")
        assert any("Edit_wideEditVariant0.run" in callees
                   for callees in targets.values())

    def test_add_guarded_module_stays_guarded(self):
        program = generate_benchmark(WIDE_SPEC)
        step = EditStepSpec("add-guarded-module", 0)
        build_edit_delta(WIDE_SPEC, step).apply_to(
            program, require_monotone=True)
        result = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
        # The rotating pattern for index 0 is boolean_flag: SkipFlow proves
        # the module body dead while the guard driver is reachable.
        assert "Edit_wideEditLib0Driver.drive" in result.reachable_methods
        assert "Edit_wideEditLib0Entry.enter" not in result.reachable_methods
