"""The application-model workload families (microservice, plugin, reflection).

These are the fuzzing subsystem's realistic program shapes, and the plugin
family doubles as the motivating workload for the reachability-refined
``allocated-type-reachable`` saturation policy: its dormant plugins are
allocated only in methods that never become reachable, so the
whole-program allocation scan re-inflates while the refined scan does not.
"""

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.ir.builder import ProgramBuilder
from repro.ir.interpreter import Interpreter
from repro.workloads.applications import (
    MicroserviceSpec,
    PluginSystemSpec,
    ReflectionSpec,
    add_microservice_module,
    add_plugin_system_module,
    add_reflection_module,
)
from repro.workloads.generator import BenchmarkSpec, generate_benchmark


def _build(add_module, prefix, spec):
    pb = ProgramBuilder()
    handle = add_module(pb, prefix, spec)
    pb.add_entry_point(handle.driver)
    program = pb.build()
    if getattr(handle, "reflection", None) is not None:
        handle.reflection.apply_to(program)
    return program, handle


def _exact(program):
    return SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()


def _saturated(program, policy, threshold=3):
    config = AnalysisConfig.skipflow().with_saturation_policy(
        policy, threshold)
    return SkipFlowAnalysis(program, config).run()


class TestMicroserviceModule:
    SPEC = MicroserviceSpec(services=5, routes=2, chained=True,
                            guarded_methods=6)

    def test_method_count_matches_spec(self):
        program, handle = _build(add_microservice_module, "Ms", self.SPEC)
        assert handle.method_count == self.SPEC.method_count
        assert set(handle.method_names) <= set(program.methods)

    def test_driver_executes_and_analysis_covers_it(self):
        program, handle = _build(add_microservice_module, "Ms", self.SPEC)
        trace = Interpreter(program).run(handle.driver)
        assert trace.completed
        result = _exact(program)
        for method in trace.executed_methods:
            assert result.is_method_reachable(method)

    def test_canary_payload_is_dead_under_exact_semantics(self):
        program, handle = _build(add_microservice_module, "Ms", self.SPEC)
        result = _exact(program)
        # No Canary is ever deployed: its handler and the guarded fallback
        # payload both stay unreachable.
        assert f"{handle.canary_class}.handle" not in result.reachable_methods
        assert "MsFallbackEntry.enter" not in result.reachable_methods

    def test_relay_chain_reaches_every_service(self):
        program, handle = _build(add_microservice_module, "Ms", self.SPEC)
        result = _exact(program)
        for service in handle.service_classes:
            assert f"{service}.handle" in result.reachable_methods


class TestPluginSystemModule:
    SPEC = PluginSystemSpec(plugins=8, active=5, hooks=2, payload_methods=6)

    def test_method_count_matches_spec(self):
        program, handle = _build(add_plugin_system_module, "Ps", self.SPEC)
        assert handle.method_count == self.SPEC.method_count
        assert self.SPEC.dormant == 3
        assert len(handle.dormant_classes) == 3

    def test_driver_executes_and_analysis_covers_it(self):
        program, handle = _build(add_plugin_system_module, "Ps", self.SPEC)
        trace = Interpreter(program).run(handle.driver)
        assert trace.completed
        result = _exact(program)
        for method in trace.executed_methods:
            assert result.is_method_reachable(method)

    def test_dormant_boot_methods_are_dead_under_exact_semantics(self):
        program, handle = _build(add_plugin_system_module, "Ps", self.SPEC)
        result = _exact(program)
        for boot in handle.boot_methods:
            assert boot not in result.reachable_methods
        assert "PsDormantEntry.enter" not in result.reachable_methods

    def test_allocated_type_reinflates_but_reachable_variant_does_not(self):
        """The policy's headline: dormant allocations fool the whole-program
        scan (their ``new`` sites exist in text) but not the reachability-
        refined one (their methods never become reachable)."""
        program, _ = _build(add_plugin_system_module, "Ps", self.SPEC)
        exact = _exact(program)
        allocated = _saturated(program, "allocated-type")
        refined = _saturated(program, "allocated-type-reachable")
        assert allocated.stats.saturated_flows > 0
        assert refined.stats.saturated_flows > 0
        # Whole-program allocation scan re-inflates the dormant guards...
        assert (allocated.reachable_method_count
                > exact.reachable_method_count)
        # ...the refined scan discharges them all: exact reachability.
        assert refined.reachable_methods == exact.reachable_methods

    def test_refined_variant_is_still_sound(self):
        program, handle = _build(add_plugin_system_module, "Ps", self.SPEC)
        refined = _saturated(program, "allocated-type-reachable")
        exact = _exact(program)
        assert exact.reachable_methods <= refined.reachable_methods
        trace = Interpreter(program).run(handle.driver)
        for method in trace.executed_methods:
            assert refined.is_method_reachable(method)


class TestReflectionModule:
    SPEC = ReflectionSpec(handlers=3, fields=2, payload_methods=5)

    def test_method_count_matches_spec(self):
        program, handle = _build(add_reflection_module, "Rf", self.SPEC)
        assert handle.method_count == self.SPEC.method_count
        # apply_to added the synthetic reflection root on top.
        assert ("ReflectionRoots.initializeReflectiveFields"
                in program.methods)

    def test_handlers_reachable_only_through_reflection(self):
        with_reflection, handle = _build(add_reflection_module, "Rf",
                                         self.SPEC)
        covered = _exact(with_reflection)
        for handler in handle.handler_classes:
            assert f"{handler}.onMessage" in covered.reachable_methods

        # Without applying the config the gateway's field loads only ever
        # see the explicit null, so no handler dispatch survives.
        pb = ProgramBuilder()
        bare_handle = add_reflection_module(pb, "Rf", self.SPEC)
        pb.add_entry_point(bare_handle.driver)
        bare = _exact(pb.build())
        for handler in bare_handle.handler_classes:
            assert f"{handler}.onMessage" not in bare.reachable_methods

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="handler"):
            ReflectionSpec(handlers=0)
        with pytest.raises(ValueError, match=">= 2 services"):
            MicroserviceSpec(services=1)
        with pytest.raises(ValueError, match="active plugins"):
            PluginSystemSpec(plugins=4, active=5)


class TestGeneratorIntegration:
    SPEC = BenchmarkSpec(
        name="app-mix", suite="test", core_methods=8, guarded_modules=(),
        services=MicroserviceSpec(services=3, routes=1),
        plugins=PluginSystemSpec(plugins=4, active=2, hooks=1),
        reflection=ReflectionSpec(handlers=2, fields=1),
    )

    def test_expected_total_methods_is_exact(self):
        program = generate_benchmark(self.SPEC)
        assert len(program.methods) == self.SPEC.expected_total_methods

    def test_family_drivers_run_from_main(self):
        program = generate_benchmark(self.SPEC)
        result = _exact(program)
        trace = Interpreter(program).run("Main.main")
        assert trace.completed
        # Every family driver actually executed, and the analysis covers
        # the full concrete trace.
        for driver in ("App_mixNetMesh.drive", "App_mixPlugRegistry.drive",
                       "App_mixRxGateway.dispatch0"):
            assert driver in trace.executed_methods
        for method in trace.executed_methods:
            assert result.is_method_reachable(method)
