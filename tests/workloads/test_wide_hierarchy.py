"""Shape invariants and saturation semantics of the wide-hierarchy family."""

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis, run_baseline, run_skipflow
from repro.ir.builder import ProgramBuilder
from repro.ir.validate import validate_program
from repro.workloads.generator import BenchmarkSpec, HierarchySpec, generate_benchmark
from repro.workloads.patterns import add_wide_hierarchy_module
from repro.workloads.suites import (
    WIDE_HIERARCHY_SUITE,
    all_suites,
    extended_suites,
    suite_by_name,
    wide_hierarchy_suite,
)


def _hierarchy_program(depth=2, fanout=4, call_sites=3, guarded_methods=8):
    pb = ProgramBuilder()
    handle = add_wide_hierarchy_module(
        pb, "Demo", depth=depth, fanout=fanout,
        call_sites=call_sites, guarded_methods=guarded_methods)
    pb.declare_class("Main")
    mb = pb.method("Main", "main", is_static=True)
    mb.invoke_static(*handle.driver.split("."))
    mb.return_void()
    pb.finish_method(mb)
    pb.add_entry_point("Main.main")
    return pb.build(), handle


class TestHierarchyModule:
    def test_shape_matches_knobs(self):
        program, handle = _hierarchy_program(depth=2, fanout=4)
        validate_program(program)
        assert handle.leaf_count == 16
        # fanout^0 + fanout^1 + fanout^2 tree classes plus the rare type.
        assert handle.type_count == 1 + 4 + 16 + 1
        for name in handle.method_names:
            assert program.has_method(name)

    def test_every_class_is_concrete_with_run(self):
        program, handle = _hierarchy_program()
        for class_name in handle.class_names:
            assert program.has_method(f"{class_name}.run")

    def test_exact_analysis_sees_all_leaves_and_no_rare(self):
        program, handle = _hierarchy_program()
        result = run_skipflow(program)
        for leaf in handle.leaf_classes:
            assert result.is_method_reachable(f"{leaf}.run")
        assert not result.is_method_reachable(f"{handle.rare_class}.run")

    def test_payload_dead_exactly_live_for_baseline(self):
        program, handle = _hierarchy_program()
        assert not run_skipflow(program).is_method_reachable(handle.payload_entry)
        assert run_baseline(program).is_method_reachable(handle.payload_entry)

    def test_saturation_loses_rare_guard_precision(self):
        """Below-width cutoffs make the rare-guarded payload reachable."""
        program, handle = _hierarchy_program(depth=2, fanout=4)
        config = AnalysisConfig.skipflow().with_saturation_threshold(4)
        saturated = SkipFlowAnalysis(program, config).run()
        assert saturated.stats.saturated_flows > 0
        assert saturated.is_method_reachable(handle.payload_entry)
        assert saturated.is_method_reachable(f"{handle.rare_class}.run")
        # Sound over-approximation: everything the exact analysis reaches.
        exact = run_skipflow(program)
        assert exact.reachable_methods <= saturated.reachable_methods

    def test_cutoff_above_width_is_exact(self):
        program, handle = _hierarchy_program(depth=1, fanout=4)
        config = AnalysisConfig.skipflow().with_saturation_threshold(1000)
        high = SkipFlowAnalysis(program, config).run()
        exact = run_skipflow(program)
        assert high.reachable_methods == exact.reachable_methods
        assert high.stats.saturated_flows == 0

    def test_invalid_knobs_rejected(self):
        pb = ProgramBuilder()
        with pytest.raises(ValueError):
            add_wide_hierarchy_module(pb, "Bad", depth=0, fanout=4)
        with pytest.raises(ValueError):
            add_wide_hierarchy_module(pb, "Bad", depth=1, fanout=1)
        with pytest.raises(ValueError):
            add_wide_hierarchy_module(pb, "Bad", depth=1, fanout=4, call_sites=0)


class TestHierarchySpec:
    def test_counts_model(self):
        spec = HierarchySpec(depth=2, fanout=4, call_sites=3, guarded_methods=8)
        assert spec.leaf_count == 16
        assert spec.type_count == 22
        program, handle = _hierarchy_program(depth=2, fanout=4, call_sites=3,
                                             guarded_methods=8)
        assert spec.method_count == handle.method_count

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            HierarchySpec(depth=0)
        with pytest.raises(ValueError):
            HierarchySpec(fanout=1)
        with pytest.raises(ValueError):
            HierarchySpec(call_sites=0)

    def test_benchmark_spec_counts_hierarchies(self):
        hierarchy = HierarchySpec(depth=1, fanout=8)
        spec = BenchmarkSpec(name="h", suite="test", core_methods=30,
                             guarded_modules=(), hierarchies=(hierarchy,))
        assert spec.hierarchy_methods == hierarchy.method_count
        assert spec.hierarchy_types == hierarchy.type_count
        program = generate_benchmark(spec)
        validate_program(program)
        assert len(program.methods) == spec.expected_total_methods

    def test_generation_is_deterministic(self):
        spec = BenchmarkSpec(name="h", suite="test", core_methods=25,
                             guarded_modules=(),
                             hierarchies=(HierarchySpec(depth=2, fanout=3),))
        assert (sorted(generate_benchmark(spec).methods)
                == sorted(generate_benchmark(spec).methods))


class TestWideHierarchySuite:
    def test_suite_reaches_hundreds_of_types_per_flow(self):
        suite = wide_hierarchy_suite()
        assert len(suite) >= 5
        widths = [spec.hierarchies[0].leaf_count for spec in suite]
        assert max(widths) >= 500
        assert sum(1 for width in widths if width >= 100) >= 3

    def test_specs_have_exact_method_model(self):
        for spec in wide_hierarchy_suite()[:2]:
            program = generate_benchmark(spec)
            validate_program(program)
            assert len(program.methods) == spec.expected_total_methods

    def test_not_part_of_paper_suites(self):
        assert WIDE_HIERARCHY_SUITE not in all_suites()
        assert WIDE_HIERARCHY_SUITE in extended_suites()

    def test_lookup_by_name(self):
        assert suite_by_name("widehierarchy") == wide_hierarchy_suite()
