"""Campaigns and the mutation smoke (the oracle's own regression test)."""

import pytest

from repro.fuzz.runner import (
    drop_main_mutator,
    run_campaign,
    run_mutation_smoke,
)

CHEAP_MATRIX = dict(schedulings=("fifo",), saturations=("off",))


class TestRunCampaign:
    def test_clean_campaign_is_green_and_counted(self):
        result = run_campaign(seed=5, cases=3, **CHEAP_MATRIX)
        assert result.ok
        assert result.cases_run == 3
        assert result.prefixes_checked >= 3
        assert result.combos_checked == 3  # one combo per case here

    def test_needs_exactly_one_budget(self):
        with pytest.raises(ValueError, match="exactly one"):
            run_campaign(seed=0)
        with pytest.raises(ValueError, match="exactly one"):
            run_campaign(seed=0, cases=1, budget_seconds=1.0)

    def test_budget_mode_runs_at_least_one_case(self):
        result = run_campaign(seed=5, budget_seconds=0.0, **CHEAP_MATRIX)
        assert result.cases_run == 1

    def test_broken_analyzer_produces_shrunk_repro_files(self, tmp_path):
        from repro.fuzz.reprofile import load_repro, violations_from_dict

        result = run_campaign(seed=5, cases=1, out_dir=tmp_path,
                              mutator=drop_main_mutator, **CHEAP_MATRIX)
        assert not result.ok
        (failure,) = result.failures
        assert failure.repro_path is not None
        script, meta = load_repro(failure.repro_path)
        assert script == failure.shrunk
        assert violations_from_dict(meta)
        # The shrunk case is minimal: bare core, no steps.
        assert script.steps == ()
        assert script.base.core_methods == 5

    def test_deterministic_across_runs(self):
        first = run_campaign(seed=9, cases=2, **CHEAP_MATRIX)
        second = run_campaign(seed=9, cases=2, **CHEAP_MATRIX)
        assert first.ok == second.ok
        assert first.prefixes_checked == second.prefixes_checked


class TestMutationSmoke:
    def test_planted_bug_is_caught_and_shrunk(self):
        report, original, shrunk = run_mutation_smoke(seed=0)
        assert not report.ok
        assert any(v.invariant == "executed-not-reachable"
                   for v in report.violations)
        assert (shrunk.base.expected_total_methods
                <= original.base.expected_total_methods)
