"""The differential oracle: interpreter trace vs every analyzer."""

from repro.fuzz.generator import generate_cases
from repro.fuzz.oracle import (
    check_case,
    execute_all_entry_points,
    synthesize_arguments,
)
from repro.workloads.edits import EditScriptSpec, EditStepSpec
from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    generate_benchmark,
)

SMALL_SPEC = BenchmarkSpec(
    name="oracle-small", suite="fuzz", core_methods=6,
    guarded_modules=(GuardedModuleSpec("null_default", 5),))

SMALL_MATRIX = dict(schedulings=("fifo",), saturations=("off",))


def _script(steps=()):
    return EditScriptSpec(base=SMALL_SPEC, steps=tuple(steps))


class TestExecution:
    def test_synthesize_arguments_covers_reference_params(self):
        from repro.lang import compile_source

        program = compile_source("""
class Payload { }
class Main {
  static void main() { }
  static void take(Payload p, int n) { }
}
""")
        arguments = synthesize_arguments(program, "Main.take")
        assert len(arguments) == 2
        assert arguments[0].type_name == "Payload"
        assert arguments[1] == 7

    def test_every_entry_point_gets_its_own_budget(self):
        # One spinning entry must not consume the budget of later ones:
        # each entry point runs in a fresh interpreter.
        from repro.lang import compile_source

        program = compile_source("""
class Main { static void main() { } }
class Late { static void go() { } }
""")
        program.add_entry_point("Late.go")
        trace = execute_all_entry_points(program, max_steps=100)
        assert {"Main.main", "Late.go"} <= set(trace.executed_methods)


class TestCheckCase:
    def test_clean_case_has_no_violations(self):
        report = check_case(_script(), **SMALL_MATRIX)
        assert report.ok
        assert report.prefixes_checked == 1
        assert report.combos_checked == 1
        assert report.executed_methods > 0

    def test_checks_every_edit_prefix(self):
        steps = (EditStepSpec(kind="add-variant", index=0),
                 EditStepSpec(kind="add-dispatch", index=1))
        report = check_case(_script(steps), **SMALL_MATRIX)
        assert report.ok
        assert report.prefixes_checked == 3  # base + each edit prefix

    def test_full_matrix_covers_every_registered_policy(self):
        from repro.core.kernel import (
            available_saturation_policies,
            available_scheduling_policies,
        )

        report = check_case(_script())
        expected = (len(available_scheduling_policies())
                    * len(available_saturation_policies()))
        assert report.combos_checked == expected
        assert report.ok

    def test_mutated_analyzer_is_caught(self):
        def drop_main(analyzer, reachable):
            return {m for m in reachable if m != "Main.main"}

        report = check_case(_script(), mutator=drop_main, **SMALL_MATRIX)
        assert not report.ok
        invariants = {v.invariant for v in report.violations}
        assert "executed-not-reachable" in invariants
        # Every analyzer tier is checked against the trace.
        analyzers = {v.analyzer for v in report.violations}
        assert {"cha", "rta", "pta", "skipflow"} <= analyzers

    def test_violation_detail_names_the_method(self):
        def drop_main(analyzer, reachable):
            return {m for m in reachable if m != "Main.main"}

        report = check_case(_script(), mutator=drop_main, **SMALL_MATRIX)
        assert any("Main.main" in violation.detail
                   for violation in report.violations)

    def test_generated_quick_cases_are_sound(self):
        # A slice of the CI sweep, on the cheap matrix.
        for script in generate_cases(11, 4):
            report = check_case(script, **SMALL_MATRIX)
            assert report.ok, report.violations[0]


class TestWarmColdEquivalence:
    def test_warm_chain_checked_per_combo(self):
        steps = (EditStepSpec(kind="add-variant", index=0),)
        report = check_case(
            _script(steps), schedulings=("fifo", "lifo"),
            saturations=("off", "allocated-type-reachable"))
        assert report.ok
        assert report.combos_checked == 4

    def test_application_families_survive_the_full_oracle(self):
        from repro.workloads.applications import (
            PluginSystemSpec,
            ReflectionSpec,
        )

        spec = BenchmarkSpec(
            name="oracle-app", suite="fuzz", core_methods=5,
            guarded_modules=(),
            plugins=PluginSystemSpec(plugins=4, active=2, hooks=1),
            reflection=ReflectionSpec(handlers=2, fields=1))
        steps = (EditStepSpec(kind="add-plugin", index=0),)
        report = check_case(
            EditScriptSpec(base=spec, steps=steps),
            schedulings=("fifo",),
            saturations=("off", "allocated-type", "allocated-type-reachable"))
        assert report.ok, report.violations[0]
