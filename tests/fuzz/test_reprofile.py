"""Repro files: JSON round-trip, versioning, loud failure on junk."""

import json

import pytest

from repro.fuzz.generator import generate_cases
from repro.fuzz.oracle import OracleViolation
from repro.fuzz.reprofile import (
    REPRO_FORMAT_VERSION,
    ReproFileError,
    load_repro,
    script_from_dict,
    script_to_dict,
    violations_from_dict,
    write_repro,
)
from repro.workloads.generator import generate_benchmark


class TestRoundTrip:
    def test_generated_cases_round_trip(self):
        for script in generate_cases(21, 6):
            rebuilt = script_from_dict(script_to_dict(script))
            assert rebuilt == script

    def test_rebuilt_spec_generates_the_identical_program(self):
        script = generate_cases(22, 1)[0]
        rebuilt = script_from_dict(script_to_dict(script))
        original = generate_benchmark(script.base)
        regenerated = generate_benchmark(rebuilt.base)
        assert set(original.methods) == set(regenerated.methods)
        assert (set(original.entry_points)
                == set(regenerated.entry_points))

    def test_write_and_load(self, tmp_path):
        script = generate_cases(23, 1)[0]
        violations = (OracleViolation(
            invariant="executed-not-reachable", analyzer="cha", step=0,
            detail="executed method Main.main is not reachable"),)
        path = write_repro(tmp_path / "sub" / "case.json", script,
                           seed=23, case_index=0, threshold=4,
                           violations=violations)
        loaded_script, meta = load_repro(path)
        assert loaded_script == script
        assert meta["seed"] == 23
        assert meta["threshold"] == 4
        assert violations_from_dict(meta) == list(violations)


class TestFailureModes:
    def test_unknown_version_is_rejected(self, tmp_path):
        script = generate_cases(0, 1)[0]
        path = write_repro(tmp_path / "case.json", script)
        data = json.loads(path.read_text())
        data["format"] = REPRO_FORMAT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ReproFileError, match="format"):
            load_repro(path)

    def test_non_json_is_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(ReproFileError, match="cannot read"):
            load_repro(path)

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(ReproFileError, match="cannot read"):
            load_repro(tmp_path / "absent.json")

    def test_malformed_spec_is_rejected(self, tmp_path):
        path = tmp_path / "case.json"
        path.write_text(json.dumps({
            "format": REPRO_FORMAT_VERSION,
            "script": {"base": {"name": "x"}, "steps": []}}))
        with pytest.raises(ReproFileError, match="malformed benchmark spec"):
            load_repro(path)
