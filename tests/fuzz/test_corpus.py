"""Replay the fuzz corpus: recorded cases as regression tests.

Every ``corpus/*.json`` file is a repro file (see
:mod:`repro.fuzz.reprofile`): a case that was interesting at some point —
shrunk output of the mutation smoke, or shapes that stressed a specific
subsystem.  Each one replays through the full differential oracle and must
come back clean: a violation here means a previously-understood case
regressed.  Nightly-found failures get fixed, then their shrunk repro file
lands in ``corpus/`` so the bug stays fixed.
"""

from pathlib import Path

import pytest

from repro.fuzz.oracle import check_case
from repro.fuzz.reprofile import load_repro, violations_from_dict

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, f"no corpus files under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[p.stem for p in CORPUS_FILES])
def test_corpus_case_replays_clean(path):
    script, meta = load_repro(path)
    threshold = meta.get("threshold") or 4
    report = check_case(script, threshold=threshold)
    assert report.ok, (
        f"corpus case {path.name} regressed: {report.violations[0]}")


def test_mutation_smoke_corpus_recorded_the_planted_violations():
    # The mutation-smoke entry keeps the violations the planted bug
    # produced when it was recorded — documentation that the oracle fires.
    path = CORPUS_DIR / "mutation-smoke-shrunk.json"
    _, meta = load_repro(path)
    recorded = violations_from_dict(meta)
    assert recorded
    assert any(v.invariant == "executed-not-reachable" for v in recorded)
