"""The greedy shrinker: minimizes failing cases, rejects invalid candidates."""

from repro.fuzz.generator import generate_cases
from repro.fuzz.shrink import case_cost, shrink_case
from repro.workloads.applications import PluginSystemSpec
from repro.workloads.edits import EditScriptSpec, EditStepSpec
from repro.workloads.generator import BenchmarkSpec, GuardedModuleSpec


def _rich_script():
    spec = BenchmarkSpec(
        name="shrink-me", suite="fuzz", core_methods=40,
        guarded_modules=(GuardedModuleSpec("null_default", 8),
                         GuardedModuleSpec("boolean_flag", 8)),
        plugins=PluginSystemSpec(plugins=6, active=3, hooks=2))
    steps = (EditStepSpec(kind="add-variant", index=0),
             EditStepSpec(kind="add-plugin", index=1),
             EditStepSpec(kind="add-dispatch", index=2))
    return EditScriptSpec(base=spec, steps=steps)


class TestShrinkCase:
    def test_always_failing_predicate_reaches_the_floor(self):
        shrunk = shrink_case(_rich_script(), lambda script: True)
        # Everything optional is gone: no steps, no families, minimal core.
        assert shrunk.steps == ()
        assert shrunk.base.plugins is None
        assert shrunk.base.guarded_modules == ()
        assert shrunk.base.core_methods == 5

    def test_preserves_the_failing_ingredient(self):
        # Failure depends on the plugin family: shrinking must keep it
        # while still dropping everything else.
        def needs_plugins(script):
            return script.base.plugins is not None

        shrunk = shrink_case(_rich_script(), needs_plugins)
        assert shrunk.base.plugins is not None
        assert shrunk.base.guarded_modules == ()
        assert shrunk.base.core_methods == 5
        assert case_cost(shrunk) < case_cost(_rich_script())

    def test_preserves_a_required_edit_step(self):
        def needs_plugin_edit(script):
            return any(step.kind == "add-plugin" for step in script.steps)

        shrunk = shrink_case(_rich_script(), needs_plugin_edit)
        assert [step.kind for step in shrunk.steps] == ["add-plugin"]
        # Dropping the plugins family would orphan the step, and the
        # family-dropping pass removes dependent steps with it — so the
        # predicate keeps the family alive too.
        assert shrunk.base.plugins is not None

    def test_predicate_exceptions_reject_the_candidate(self):
        calls = []

        def explodes_on_small(script):
            calls.append(script)
            if script.base.core_methods < 40:
                raise RuntimeError("boom")
            return True

        shrunk = shrink_case(_rich_script(), explodes_on_small)
        # Candidates that blew up were rejected, not accepted or raised.
        assert shrunk.base.core_methods == 40
        assert len(calls) > 1

    def test_never_increases_cost(self):
        for script in generate_cases(13, 6):
            shrunk = shrink_case(script, lambda candidate: True)
            assert case_cost(shrunk) <= case_cost(script)

    def test_attempt_budget_bounds_the_search(self):
        attempts = []

        def count(script):
            attempts.append(script)
            return True

        shrink_case(_rich_script(), count, max_attempts=5)
        assert len(attempts) <= 5
