"""The seeded fuzz-case generator: determinism, validity, profile shapes."""

import random

from repro.fuzz.generator import (
    DEEP_PROFILE,
    FUZZ_GUARD_PATTERNS,
    QUICK_PROFILE,
    applicable_edit_kinds,
    generate_cases,
    get_profile,
    random_spec,
)
from repro.workloads.edits import build_edit_delta
from repro.workloads.generator import generate_benchmark

import pytest


class TestDeterminism:
    def test_same_seed_same_cases(self):
        first = generate_cases(42, 8)
        second = generate_cases(42, 8)
        assert first == second

    def test_different_seeds_diverge(self):
        assert generate_cases(1, 8) != generate_cases(2, 8)

    def test_case_stream_is_prefix_stable(self):
        # Asking for more cases never changes the earlier ones.
        assert generate_cases(7, 4) == generate_cases(7, 12)[:4]


class TestSpecValidity:
    def test_every_quick_case_builds_and_edits_apply(self):
        for script in generate_cases(3, 10):
            program = generate_benchmark(script.base)
            assert len(program.methods) == script.base.expected_total_methods
            for step in script.steps:
                delta = build_edit_delta(script.base, step)
                delta.apply_to(program, require_monotone=True)

    def test_guard_patterns_exclude_never_returns(self):
        # never_returns spins forever at runtime; the oracle interprets
        # every case, so the fuzzer must not sample it.
        assert "never_returns" not in FUZZ_GUARD_PATTERNS
        rng = random.Random(0)
        for index in range(30):
            spec = random_spec(rng, QUICK_PROFILE, index)
            for module in spec.guarded_modules:
                assert module.pattern in FUZZ_GUARD_PATTERNS

    def test_edit_kinds_match_present_families(self):
        rng = random.Random(5)
        saw_plugin_kind = saw_no_plugin = False
        for index in range(40):
            spec = random_spec(rng, QUICK_PROFILE, index)
            kinds = applicable_edit_kinds(spec)
            if spec.plugins is None:
                assert "add-plugin" not in kinds
                saw_no_plugin = True
            else:
                assert "add-plugin" in kinds
                saw_plugin_kind = True
            if spec.services is None:
                assert "add-service" not in kinds
            else:
                assert "add-service" in kinds
        assert saw_plugin_kind and saw_no_plugin


class TestProfiles:
    def test_lookup(self):
        assert get_profile("quick") is QUICK_PROFILE
        assert get_profile("deep") is DEEP_PROFILE
        with pytest.raises(ValueError, match="unknown fuzz profile"):
            get_profile("nope")

    def test_deep_profile_scales_an_order_of_magnitude(self):
        quick = [s.base.expected_total_methods
                 for s in generate_cases(0, 10, QUICK_PROFILE)]
        deep = [s.base.expected_total_methods
                for s in generate_cases(0, 10, DEEP_PROFILE)]
        # The 10-100x claim, checked loosely on averages.
        assert sum(deep) / len(deep) > 5 * (sum(quick) / len(quick))
