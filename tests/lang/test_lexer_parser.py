"""Tests for the surface-language lexer and parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import LexerError, ParseError
from repro.lang.lexer import TokenKind, tokenize
from repro.lang.parser import parse


class TestLexer:
    def test_identifiers_keywords_and_ints(self):
        tokens = tokenize("class Foo { int x; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] is TokenKind.KEYWORD
        assert tokens[1].text == "Foo"
        assert tokens[-1].kind is TokenKind.EOF

    def test_multichar_symbols(self):
        tokens = tokenize("a == b != c <= d >= e")
        symbols = [t.text for t in tokens if t.kind is TokenKind.SYMBOL]
        assert symbols == ["==", "!=", "<=", ">="]

    def test_line_comments_skipped(self):
        tokens = tokenize("a // comment\n b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_block_comments_skipped(self):
        tokens = tokenize("a /* multi \n line */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("int x = @;")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestParserDeclarations:
    def test_class_with_field_and_method(self):
        unit = parse("""
            class Point {
                int x;
                int getX() { return this.x; }
            }
        """)
        cls = unit.class_named("Point")
        assert cls.superclass == "Object"
        assert [f.name for f in cls.fields] == ["x"]
        assert [m.name for m in cls.methods] == ["getX"]

    def test_extends_clause(self):
        unit = parse("class A {} class B extends A {}")
        assert unit.class_named("B").superclass == "A"

    def test_static_method(self):
        unit = parse("class M { static void main() { } }")
        assert unit.class_named("M").methods[0].is_static

    def test_parameters(self):
        unit = parse("class S { int add(int a, int b) { return a + b; } }")
        method = unit.class_named("S").methods[0]
        assert [p.name for p in method.parameters] == ["a", "b"]
        assert [p.declared_type for p in method.parameters] == ["int", "int"]

    def test_missing_class_keyword(self):
        with pytest.raises(ParseError):
            parse("klass A {}")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("class A { void m() { int x = 1 } }")

    def test_unknown_class_lookup(self):
        unit = parse("class A {}")
        with pytest.raises(KeyError):
            unit.class_named("B")


class TestParserStatements:
    def _method_body(self, body):
        unit = parse("class C { void m(int p, C other) { %s } }" % body)
        return unit.class_named("C").methods[0].body

    def test_if_else(self):
        (stmt,) = self._method_body("if (p < 1) { p = 1; } else { p = 2; }")
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_if_without_else(self):
        (stmt,) = self._method_body("if (p == 0) { p = 1; }")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body == ()

    def test_else_if_chain(self):
        (stmt,) = self._method_body(
            "if (p == 0) { p = 1; } else if (p == 1) { p = 2; } else { p = 3; }")
        assert isinstance(stmt.else_body[0], ast.IfStmt)

    def test_while(self):
        (stmt,) = self._method_body("while (p < 10) { p = p + 1; }")
        assert isinstance(stmt, ast.WhileStmt)

    def test_local_declaration_with_initializer(self):
        (stmt,) = self._method_body("int x = 5;")
        assert isinstance(stmt, ast.LocalDecl)
        assert isinstance(stmt.initializer, ast.IntLiteral)

    def test_field_assignment(self):
        (stmt,) = self._method_body("other.p = 3;")
        assert isinstance(stmt, ast.AssignStmt)
        assert isinstance(stmt.target, ast.FieldAccess)

    def test_return_value(self):
        unit = parse("class C { int m() { return 4; } }")
        (stmt,) = unit.class_named("C").methods[0].body
        assert isinstance(stmt, ast.ReturnStmt)
        assert stmt.value.value == 4

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            self._method_body("1 = p;")


class TestParserExpressions:
    def _expr(self, text):
        unit = parse("class C { void m(C other, int p) { x = %s; } }" % text)
        # the body is a single assignment whose value is the expression
        return unit.class_named("C").methods[0].body[0].value

    def test_instanceof(self):
        expr = self._expr("other instanceof C")
        assert isinstance(expr, ast.InstanceOf)
        assert expr.class_name == "C"

    def test_comparison_and_arithmetic_precedence(self):
        expr = self._expr("p + 1 < p * 2")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "<"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_method_call_on_expression(self):
        expr = self._expr("other.helper(1, p)")
        assert isinstance(expr, ast.MethodCall)
        assert not expr.is_static
        assert len(expr.arguments) == 2

    def test_static_call_detected_by_capitalized_receiver(self):
        expr = self._expr("Library.open()")
        assert isinstance(expr, ast.MethodCall)
        assert expr.is_static
        assert expr.static_class == "Library"

    def test_new_object(self):
        expr = self._expr("new C()")
        assert isinstance(expr, ast.NewObject)

    def test_not_and_literals(self):
        assert isinstance(self._expr("!true"), ast.NotOp)
        assert isinstance(self._expr("null"), ast.NullLiteral)
        assert self._expr("false").value is False

    def test_unary_minus(self):
        expr = self._expr("-p")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "-"

    def test_parenthesized(self):
        expr = self._expr("(p + 1) * 2")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_field_chain(self):
        expr = self._expr("other.next")
        assert isinstance(expr, ast.FieldAccess)
