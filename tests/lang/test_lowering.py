"""Tests for lowering surface programs to SSA IR and analyzing them."""

import pytest

from repro import AnalysisConfig, SkipFlowAnalysis
from repro.ir.validate import validate_program
from repro.lang import compile_source
from repro.lang.errors import LoweringError


def analyze(source, config=None, roots=None):
    program = compile_source(source)
    return SkipFlowAnalysis(program, config or AnalysisConfig.skipflow()).run(roots)


class TestBasicLowering:
    def test_produces_valid_ir(self):
        program = compile_source("""
            class Counter {
                int value;
                void increment() { this.value = this.value + 1; }
            }
            class Main {
                static void main() {
                    Counter c = new Counter();
                    c.increment();
                }
            }
        """)
        validate_program(program)
        assert program.has_method("Counter.increment")
        assert program.entry_points == ["Main.main"]

    def test_explicit_entry_points(self):
        program = compile_source("class A { void m() { } }", entry_points=["A.m"])
        assert program.entry_points == ["A.m"]

    def test_void_method_gets_implicit_return(self):
        program = compile_source("class A { void m() { int x = 1; } }",
                                 entry_points=["A.m"])
        method = program.method("A.m")
        assert any(block.end.__class__.__name__ == "Return" for block in method.blocks)

    def test_missing_return_in_non_void_method_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("class A { int m() { int x = 1; } }", entry_points=["A.m"])

    def test_unknown_variable_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("class A { void m() { x = 1; } }", entry_points=["A.m"])

    def test_this_in_static_method_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("class A { static void m() { this.x = 1; } }",
                           entry_points=["A.m"])

    def test_unknown_superclass_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("class A extends Missing { }")


class TestControlFlowLowering:
    def test_if_else_phi(self):
        result = analyze("""
            class Main {
                static int pick(int x) {
                    int result = 0;
                    if (x < 10) { result = 1; } else { result = 2; }
                    return result;
                }
                static void main() { Main.pick(3); }
            }
        """)
        # Constant argument 3: only the then branch is live, result is 1.
        assert result.return_state("Main.pick").constant_value == 1

    def test_if_without_else_keeps_original_value(self):
        result = analyze("""
            class Main {
                static int pick(int x) {
                    int result = 7;
                    if (x < 0) { result = 1; }
                    return result;
                }
                static void main() { Main.pick(5); }
            }
        """)
        assert result.return_state("Main.pick").constant_value == 7

    def test_both_branches_returning(self):
        result = analyze("""
            class Main {
                static int sign(int x) {
                    if (x < 0) { return 0; } else { return 1; }
                }
                static void main() { Main.sign(4); }
            }
        """)
        assert result.return_state("Main.sign").constant_value == 1

    def test_while_loop_terminates_and_joins(self):
        result = analyze("""
            class Main {
                static int spin(int n) {
                    int i = 0;
                    while (i < n) { i = i + 1; }
                    return i;
                }
                static void main() { Main.spin(3); }
            }
        """)
        assert result.is_method_reachable("Main.spin")
        assert result.return_state("Main.spin").has_any

    def test_nested_if_in_loop(self):
        result = analyze("""
            class Main {
                static int run(int n) {
                    int acc = 0;
                    int i = 0;
                    while (i < n) {
                        if (i < 2) { acc = acc + 1; } else { acc = acc + 2; }
                        i = i + 1;
                    }
                    return acc;
                }
                static void main() { Main.run(5); }
            }
        """)
        assert result.is_method_reachable("Main.run")

    def test_boolean_expression_as_value(self):
        result = analyze("""
            class Main {
                static boolean isSmall(int x) { return x < 10; }
                static void main() { Main.isSmall(3); }
            }
        """)
        assert result.return_state("Main.isSmall").constant_value == 1

    def test_negation_in_condition(self):
        result = analyze("""
            class Feature { static void enable() { } }
            class Main {
                static void main() {
                    boolean off = false;
                    if (!off) { Feature.enable(); }
                }
            }
        """)
        assert result.is_method_reachable("Feature.enable")


class TestInterproceduralLowering:
    def test_virtual_call_and_field(self):
        result = analyze("""
            class Node {
                Node next;
                Node tail() {
                    if (this.next == null) { return this; } else { return this.next.tail(); }
                }
            }
            class Main {
                static void main() {
                    Node head = new Node();
                    head.next = new Node();
                    head.tail();
                }
            }
        """)
        assert result.is_method_reachable("Node.tail")
        assert result.field_state("Node.next").contains_type("Node")

    def test_arithmetic_becomes_any(self):
        result = analyze("""
            class Main {
                static int mix(int a, int b) { return a * b + 3; }
                static void main() { Main.mix(2, 3); }
            }
        """)
        assert result.return_state("Main.mix").has_any

    def test_instanceof_flag_pruning_matches_paper_example(self):
        source = """
            class Item {
                boolean isSpecial() {
                    if (this instanceof SpecialItem) { return true; } else { return false; }
                }
            }
            class SpecialItem extends Item { }
            class Audit { static void record() { } }
            class Main {
                static void main() {
                    Item item = new Item();
                    if (item.isSpecial()) { Audit.record(); }
                }
            }
        """
        skipflow = analyze(source)
        baseline = analyze(source, AnalysisConfig.baseline_pta())
        assert not skipflow.is_method_reachable("Audit.record")
        assert baseline.is_method_reachable("Audit.record")
