"""Tests for short-circuit ``&&`` / ``||`` in the surface language."""


from repro.core.analysis import run_baseline, run_skipflow
from repro.ir.validate import validate_program
from repro.lang import ast, compile_source
from repro.lang.parser import parse


class TestParsing:
    def _expr(self, text):
        unit = parse("class C { void m(int a, int b) { x = %s; } }" % text)
        return unit.class_named("C").methods[0].body[0].value

    def test_and_parsed(self):
        expr = self._expr("a < 1 && b < 2")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "&&"

    def test_or_parsed(self):
        expr = self._expr("a < 1 || b < 2")
        assert expr.op == "||"

    def test_and_binds_tighter_than_or(self):
        expr = self._expr("a < 1 || a < 2 && b < 3")
        assert expr.op == "||"
        assert expr.right.op == "&&"


class TestLoweringAndAnalysis:
    def _program(self, condition):
        return compile_source("""
            class Feature { static void activate() { } }
            class Main {
                static void check(int a, int b) {
                    if (%s) { Feature.activate(); }
                }
                static void main() { Main.check(1, 5); }
            }
        """ % condition)

    def test_lowered_program_is_valid(self):
        program = self._program("a == 1 && b == 5")
        validate_program(program)

    def test_and_with_both_true_reaches_feature(self):
        result = run_skipflow(self._program("a == 1 && b == 5"))
        assert result.is_method_reachable("Feature.activate")

    def test_and_with_one_false_prunes_feature(self):
        result = run_skipflow(self._program("a == 1 && b == 7"))
        assert not result.is_method_reachable("Feature.activate")

    def test_or_with_one_true_reaches_feature(self):
        result = run_skipflow(self._program("a == 3 || b == 5"))
        assert result.is_method_reachable("Feature.activate")

    def test_or_with_both_false_prunes_feature(self):
        result = run_skipflow(self._program("a == 3 || b == 7"))
        assert not result.is_method_reachable("Feature.activate")

    def test_baseline_always_keeps_feature(self):
        result = run_baseline(self._program("a == 3 && b == 7"))
        assert result.is_method_reachable("Feature.activate")

    def test_logical_expression_as_value(self):
        program = compile_source("""
            class Main {
                static boolean both(int a, int b) { return a < 10 && b < 10; }
                static void main() { Main.both(1, 2); }
            }
        """)
        result = run_skipflow(program)
        assert result.return_state("Main.both").constant_value == 1

    def test_nested_logical_operators(self):
        program = self._program("(a == 1 && b == 5) || a == 9")
        validate_program(program)
        result = run_skipflow(program)
        assert result.is_method_reachable("Feature.activate")
