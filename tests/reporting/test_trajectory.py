"""BENCH_<n>.json trajectories: numbering, schema, and the trend renderer."""

import json

import pytest

from repro.reporting.trajectory import (
    TRAJECTORY_VERSION,
    TrajectoryError,
    TrajectoryRow,
    bench_path,
    existing_indices,
    format_trend,
    load_history,
    next_index,
    parse_trajectory,
    render_directory,
    write_trajectory,
)


def _row(spec="pmd", policy="skipflow", kernel="object",
         steps=100, joins=10, wall=0.5):
    return TrajectoryRow(spec=spec, policy=policy, kernel=kernel,
                         steps=steps, joins=joins, wall_time_seconds=wall)


def _write(directory, *, wall=0.5, speedup=2.0, index=None,
           rows=None, study="arena-cold-solve"):
    return write_trajectory(
        directory, study=study,
        rows=rows if rows is not None else [_row(wall=wall)],
        headline=("arena_cold_solve_speedup_x", speedup), index=index)


class TestNumbering:
    def test_first_run_gets_bench_1(self, tmp_path):
        assert next_index(tmp_path) == 1
        target = _write(tmp_path)
        assert target == bench_path(tmp_path, 1)
        assert target.name == "BENCH_1.json"

    def test_runs_accumulate_in_order(self, tmp_path):
        for expected in (1, 2, 3):
            assert _write(tmp_path).name == f"BENCH_{expected}.json"
        assert existing_indices(tmp_path) == [1, 2, 3]

    def test_numbering_survives_gaps(self, tmp_path):
        _write(tmp_path, index=1)
        _write(tmp_path, index=7)
        # Next slot continues after the highest, not the count.
        assert next_index(tmp_path) == 8

    def test_pinned_index_overwrites_in_place(self, tmp_path):
        _write(tmp_path, speedup=1.0, index=1)
        _write(tmp_path, speedup=3.0, index=1)
        history = load_history(tmp_path)
        assert len(history) == 1
        assert history[0][1]["headline"]["value"] == 3.0

    def test_missing_directory_is_an_empty_history(self, tmp_path):
        assert existing_indices(tmp_path / "nope") == []
        assert load_history(tmp_path / "nope") == []


class TestSchema:
    def test_payload_round_trips_through_parse(self, tmp_path):
        rows = [_row(), _row(kernel="arena", steps=100, wall=0.2)]
        target = _write(tmp_path, rows=rows)
        payload = json.loads(target.read_text())
        assert payload["trajectory_version"] == TRAJECTORY_VERSION
        assert payload["study"] == "arena-cold-solve"
        assert parse_trajectory(payload) == rows

    def test_empty_rows_are_rejected_at_write(self, tmp_path):
        with pytest.raises(TrajectoryError):
            _write(tmp_path, rows=[])

    def test_foreign_version_is_rejected(self):
        with pytest.raises(TrajectoryError, match="version"):
            parse_trajectory({"trajectory_version": TRAJECTORY_VERSION + 1,
                              "rows": [_row().as_dict()]})

    def test_missing_row_keys_are_rejected(self):
        incomplete = _row().as_dict()
        del incomplete["joins"]
        with pytest.raises(TrajectoryError, match="joins"):
            parse_trajectory({"trajectory_version": TRAJECTORY_VERSION,
                              "rows": [incomplete]})

    def test_non_object_row_is_rejected(self):
        with pytest.raises(TrajectoryError, match="row 0"):
            parse_trajectory({"trajectory_version": TRAJECTORY_VERSION,
                              "rows": ["not a row"]})


class TestLoadHistory:
    def test_skips_unreadable_and_foreign_files(self, tmp_path):
        _write(tmp_path, index=1)
        bench_path(tmp_path, 2).write_text("{ not json")
        foreign = {"trajectory_version": TRAJECTORY_VERSION + 5,
                   "rows": [_row().as_dict()]}
        bench_path(tmp_path, 3).write_text(json.dumps(foreign))
        _write(tmp_path, index=4)
        indices = [index for index, _ in load_history(tmp_path)]
        assert indices == [1, 4]
        # Skipped files stay on disk — the history is an observation log.
        assert bench_path(tmp_path, 3).exists()


class TestTrend:
    def test_empty_history_renders_a_stub(self):
        assert "no recorded runs" in format_trend([])

    def test_single_run_shows_headline_only(self, tmp_path):
        _write(tmp_path, speedup=2.32)
        trend = render_directory(tmp_path)
        assert "BENCH_1: arena-cold-solve" in trend
        assert "arena_cold_solve_speedup_x = 2.32" in trend
        # No series block with one run — nothing to line up yet.
        assert "wall-time series" not in trend

    def test_multi_run_series_covers_shared_cells_only(self, tmp_path):
        _write(tmp_path, rows=[_row(wall=0.5),
                               _row(kernel="arena", wall=0.2)])
        _write(tmp_path, rows=[_row(wall=0.4),
                               _row(spec="luindex", wall=9.9)])
        trend = render_directory(tmp_path)
        assert "wall-time series" in trend
        assert "pmd | skipflow | object: 0.500 → 0.400" in trend
        # The arena and luindex cells appear in only one run each, so the
        # shared-cell series block holds exactly the one comparable cell.
        series = [line for line in trend.splitlines() if " | " in line]
        assert len(series) == 1
        assert "luindex" not in trend
