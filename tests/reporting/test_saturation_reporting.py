"""The saturation-study reporting: series extraction and table rendering."""

import pytest

from repro.core.analysis import AnalysisConfig
from repro.engine import run_specs
from repro.reporting.saturation import (
    format_saturation_study,
    saturation_series,
    summarize_sweep,
)
from repro.workloads.generator import BenchmarkSpec, HierarchySpec


def _sweep(thresholds=(4, None)):
    spec = BenchmarkSpec(name="sweep-spec", suite="test", core_methods=20,
                         guarded_modules=(),
                         hierarchies=(HierarchySpec(depth=1, fanout=8,
                                                    call_sites=2),))
    baseline = AnalysisConfig.baseline_pta()
    return {
        threshold: run_specs(
            [spec], baseline_config=baseline,
            skipflow_config=AnalysisConfig.skipflow()
            .with_saturation_threshold(threshold))[0]
        for threshold in thresholds
    }


class TestSeries:
    def test_points_ordered_exact_last(self):
        points = saturation_series(_sweep((None, 4)))
        assert [p.threshold for p in points] == [4, None]
        assert points[-1].threshold_label == "off"

    def test_exact_point_has_no_saturation(self):
        points = saturation_series(_sweep())
        exact = points[-1]
        assert exact.saturated_flows == 0

    def test_cutoff_point_saturates_and_loses_precision(self):
        points = saturation_series(_sweep())
        cutoff, exact = points
        assert cutoff.saturated_flows > 0
        assert cutoff.reachable_methods >= exact.reachable_methods


class TestFormatting:
    def test_table_contains_every_threshold(self):
        points = saturation_series(_sweep())
        text = format_saturation_study("sweep-spec", points)
        assert "sweep-spec" in text
        assert "off" in text
        lines = text.splitlines()
        assert len(lines) == 2 + len(points) + 1  # title, header, rule, rows

    def test_missing_exact_point_rejected(self):
        points = [p for p in saturation_series(_sweep()) if p.threshold is not None]
        with pytest.raises(ValueError):
            format_saturation_study("sweep-spec", points)

    def test_summary_reports_loss_and_savings(self):
        points = saturation_series(_sweep())
        summary = summarize_sweep(points)
        assert summary["reachable_loss_percent"] >= 0.0
        assert summary["saturated_flows"] > 0
        assert set(summary) == {"reachable_loss_percent", "joins_savings_percent",
                                "time_savings_percent", "saturated_flows"}
