"""The N-column analyzer-comparison table renderer."""

import pytest

from repro.api.report import AnalysisReport
from repro.core.results import SolverStats
from repro.reporting.table import format_analysis_comparison


def _report(analyzer, reachable, edges=5, poly=None, stats=None):
    return AnalysisReport(
        analyzer=analyzer,
        reachable_methods=frozenset(f"C.m{i}" for i in range(reachable)),
        stub_methods=frozenset(),
        call_edges=tuple((f"C.m{i}", f"C.m{i + 1}") for i in range(edges)),
        analysis_time_seconds=0.001,
        poly_calls=poly,
        solver_stats=stats,
    )


class TestFormatAnalysisComparison:
    def test_columns_follow_report_order(self):
        table = format_analysis_comparison(
            [_report("cha", 10), _report("pta", 8, poly=2,
                                         stats=SolverStats(steps=7))])
        header = table.splitlines()[2]
        assert header.index("cha") < header.index("pta")

    def test_reference_deltas_on_reachable_methods(self):
        table = format_analysis_comparison(
            [_report("cha", 10), _report("skipflow", 5, poly=0,
                                         stats=SolverStats(steps=3))])
        reachable_line = next(line for line in table.splitlines()
                              if line.startswith("reachable methods"))
        assert "(-50.0%)" in reachable_line
        # The reference column itself carries no delta.
        assert reachable_line.count("%") == 1

    def test_unavailable_metrics_render_as_na(self):
        table = format_analysis_comparison([_report("rta", 4)])
        poly_line = next(line for line in table.splitlines()
                         if line.startswith("poly calls"))
        steps_line = next(line for line in table.splitlines()
                          if line.startswith("solver steps"))
        assert "n/a" in poly_line and "n/a" in steps_line

    def test_title_defaults_and_overrides(self):
        reports = [_report("cha", 3), _report("rta", 3)]
        assert format_analysis_comparison(reports).startswith(
            "Analysis comparison")
        assert format_analysis_comparison(
            reports, title="Ladder").startswith("Ladder")

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            format_analysis_comparison([])
