"""Tests for the DOT exporters and the command-line interface."""

import pytest

from repro.cli import main as cli_main
from repro.core.analysis import run_skipflow
from repro.lang import compile_source
from repro.reporting.graphviz import call_graph_to_dot, pvpg_to_dot

SOURCE = """
class Greeter {
    void greet() { Printer.emit(); }
}
class Printer {
    static void emit() { }
}
class Unused {
    void never() { }
}
class Main {
    static void main() {
        Greeter greeter = new Greeter();
        greeter.greet();
    }
}
"""


@pytest.fixture(scope="module")
def result():
    return run_skipflow(compile_source(SOURCE))


class TestCallGraphDot:
    def test_contains_nodes_and_edges(self, result):
        dot = call_graph_to_dot(result)
        assert dot.startswith("digraph callgraph")
        assert '"Main.main"' in dot
        assert '"Greeter.greet" -> "Printer.emit";' in dot

    def test_entry_point_highlighted(self, result):
        dot = call_graph_to_dot(result)
        assert 'fillcolor="lightblue"' in dot

    def test_unreachable_methods_excluded(self, result):
        assert "Unused.never" not in call_graph_to_dot(result)


class TestPvpgDot:
    def test_single_method_export(self, result):
        dot = pvpg_to_dot(result, ["Greeter.greet"])
        assert "cluster_Greeter.greet" in dot
        assert "pred_on" in dot
        assert "style=dashed" in dot  # predicate edges
        assert "color=red" in dot     # enabled flows

    def test_all_methods_export(self, result):
        dot = pvpg_to_dot(result)
        assert "cluster_Main.main" in dot
        assert dot.count("subgraph") == result.reachable_method_count


class TestCli:
    def _write_source(self, tmp_path):
        path = tmp_path / "app.lang"
        path.write_text(SOURCE)
        return str(path)

    def test_analyze_compare(self, tmp_path, capsys):
        source = self._write_source(tmp_path)
        assert cli_main(["analyze", source, "--compare", "--optimizations",
                         "--list-unreachable"]) == 0
        output = capsys.readouterr().out
        assert "[PTA]" in output
        assert "[SkipFlow]" in output
        assert "reachable methods" in output
        assert "Unused.never" in output

    def test_analyze_single_config(self, tmp_path, capsys):
        source = self._write_source(tmp_path)
        assert cli_main(["analyze", source, "--config", "pta"]) == 0
        assert "[PTA]" in capsys.readouterr().out

    def test_callgraph_to_file(self, tmp_path):
        source = self._write_source(tmp_path)
        output = tmp_path / "graph.dot"
        assert cli_main(["callgraph", source, "--output", str(output)]) == 0
        assert output.read_text().startswith("digraph callgraph")

    def test_pvpg_for_method(self, tmp_path, capsys):
        source = self._write_source(tmp_path)
        assert cli_main(["pvpg", source, "--method", "Greeter.greet"]) == 0
        assert "cluster_Greeter.greet" in capsys.readouterr().out

    def test_explicit_entry_points(self, tmp_path, capsys):
        source = self._write_source(tmp_path)
        assert cli_main(["analyze", source, "--entry", "Unused.never"]) == 0
        assert "reachable methods:  1" in capsys.readouterr().out
