"""Rendering and summarizing of the incremental study."""

from repro.reporting.incremental import (
    IncrementalPoint,
    format_incremental_study,
    summarize_incremental,
)


def point(label, warm, cold, match=True):
    return IncrementalPoint(
        label=label, warm_steps=warm, warm_joins=warm * 2,
        warm_time_seconds=warm / 1000.0, cold_steps=cold,
        cold_joins=cold * 2, cold_time_seconds=cold / 1000.0,
        reachable_methods=100, fixpoints_match=match)


class TestFormatting:
    def test_table_shows_warm_percent_and_verdict(self):
        table = format_incremental_study(
            "bench+2edits", [point("add-variant#0", 50, 1000),
                             point("add-dispatch#1", 5, 1000)])
        assert "bench+2edits" in table
        assert "5.0%" in table and "0.5%" in table
        assert "ok" in table and "MISMATCH" not in table

    def test_mismatch_is_loud(self):
        table = format_incremental_study(
            "bench", [point("edit#0", 50, 1000, match=False)])
        assert "MISMATCH" in table

    def test_zero_cold_steps_does_not_divide(self):
        assert point("edge", 0, 0).warm_step_percent == 0.0


class TestSummary:
    def test_headline_numbers(self):
        summary = summarize_incremental([point("a#0", 50, 1000),
                                         point("b#1", 10, 500)])
        assert summary["steps"] == 2
        assert summary["all_fixpoints_match"]
        assert summary["first_step_warm_percent"] == 5.0
        assert summary["max_warm_step_percent"] == 5.0
        assert summary["total_saved_steps"] == 1440

    def test_empty_sequence(self):
        summary = summarize_incremental([])
        assert summary["steps"] == 0
        assert summary["all_fixpoints_match"]
