"""Tests for the Table 1 and Figure 9 reporting layer."""

import pytest

from repro.reporting.figures import figure9_series, format_figure9, suite_averages
from repro.reporting.records import METRIC_NAMES, compare_configurations, compare_suite
from repro.reporting.table import format_table1, summarize_reductions, table1_rows
from repro.workloads.generator import spec_from_reduction


@pytest.fixture(scope="module")
def comparisons():
    specs = [
        spec_from_reduction("alpha", "Demo", total_methods=80, reduction_percent=20.0),
        spec_from_reduction("beta", "Demo", total_methods=60, reduction_percent=8.0),
    ]
    return compare_suite(specs)


class TestComparisonRecords:
    def test_normalized_below_one_for_reachable_methods(self, comparisons):
        for comparison in comparisons:
            assert comparison.normalized("reachable_methods") < 1.0
            assert comparison.reachable_method_reduction_percent > 0.0

    def test_metric_accessors(self, comparisons):
        comparison = comparisons[0]
        for metric in METRIC_NAMES:
            assert comparison.metric(metric, "baseline") >= 0
            assert comparison.metric(metric, "skipflow") >= 0
        with pytest.raises(KeyError):
            comparison.metric("nonsense")

    def test_as_dict_contains_all_metrics(self, comparisons):
        row = comparisons[0].as_dict()
        assert row["benchmark"] == "alpha"
        for metric in METRIC_NAMES:
            assert f"pta_{metric}" in row
            assert f"skipflow_{metric}" in row
            assert f"reduction_{metric}_percent" in row

    def test_spec_attached(self, comparisons):
        assert comparisons[0].spec is not None
        assert comparisons[0].spec.name == "alpha"

    def test_compare_configurations_accepts_custom_configs(self):
        from repro.core.analysis import AnalysisConfig
        spec = spec_from_reduction("gamma", "Demo", total_methods=60, reduction_percent=10.0)
        comparison = compare_configurations(
            spec,
            baseline_config=AnalysisConfig.baseline_pta(),
            skipflow_config=AnalysisConfig.predicates_only(),
        )
        assert comparison.skipflow.configuration == "SkipFlow-predicates-only"


class TestTable1:
    def test_rows_two_per_benchmark(self, comparisons):
        rows = table1_rows(comparisons)
        assert len(rows) == 2 * len(comparisons)
        assert rows[0]["configuration"] == "PTA"
        assert rows[1]["configuration"] == "SkipFlow"

    def test_skipflow_rows_contain_percent_delta(self, comparisons):
        rows = table1_rows(comparisons)
        assert "%" in rows[1]["reachable_methods"]
        assert "%" not in rows[0]["reachable_methods"]

    def test_format_table_contains_headers_and_benchmarks(self, comparisons):
        text = format_table1(comparisons, title="My Table")
        assert "My Table" in text
        assert "Reach.Methods" in text
        assert "alpha" in text and "beta" in text
        assert "SkipFlow" in text

    def test_summarize_reductions(self, comparisons):
        summary = summarize_reductions(comparisons)
        assert summary["max"] >= summary["avg"] >= summary["min"]
        assert summarize_reductions([]) == {"max": 0.0, "min": 0.0, "avg": 0.0}


class TestFigure9:
    def test_series_has_all_metrics(self, comparisons):
        series = figure9_series(comparisons)
        assert set(series) == {"alpha", "beta"}
        for metrics in series.values():
            assert set(metrics) == set(METRIC_NAMES)

    def test_suite_averages(self, comparisons):
        averages = suite_averages(comparisons)
        assert averages["reachable_methods"] < 1.0
        assert suite_averages([])["reachable_methods"] == 1.0

    def test_format_figure(self, comparisons):
        text = format_figure9(comparisons, "Demo")
        assert "Figure 9 (Demo)" in text
        assert "alpha" in text
        assert "suite averages" in text
        assert "|" in text  # the ASCII bar
