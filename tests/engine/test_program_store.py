"""The shared program store: round-trip determinism and engine integration."""

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.engine import ProgramStore, ResultCache, run_specs
from repro.engine.runner import solve_config
from repro.ir.arena import ArenaProgram
from repro.workloads.generator import generate_benchmark, spec_from_reduction


def _spec(name="store-spec", total=90):
    return spec_from_reduction(name=name, suite="test",
                               total_methods=total, reduction_percent=10.0)


def _stable(result):
    return {key: value for key, value in result.as_dict().items()
            if "time" not in key}


class TestRoundTrip:
    def test_first_load_builds_and_stores(self, tmp_path):
        store = ProgramStore(tmp_path)
        program, from_store = store.load_or_build(_spec())
        assert not from_store
        assert (store.hits, store.misses) == (0, 1)
        assert store.contains(_spec())
        assert program.has_method("Main.main")

    def test_second_load_comes_from_store(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        _, from_store = store.load_or_build(_spec())
        assert from_store
        assert (store.hits, store.misses) == (1, 1)

    def test_roundtrip_analysis_is_bit_identical(self, tmp_path):
        """Solving an unpickled program matches a freshly generated one exactly."""
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        stored = store.load(_spec())
        fresh = generate_benchmark(_spec())
        for config in (AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow()):
            from_store = SkipFlowAnalysis(store.load(_spec()), config).run()
            from_fresh = SkipFlowAnalysis(generate_benchmark(_spec()), config).run()
            assert from_store.reachable_methods == from_fresh.reachable_methods
            assert from_store.steps == from_fresh.steps
            assert from_store.stats.joins == from_fresh.stats.joins
            assert from_store.stats.transfers == from_fresh.stats.transfers
        assert sorted(stored.methods) == sorted(fresh.methods)

    def test_loads_are_isolated_object_graphs(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        first = store.load(_spec())
        second = store.load(_spec())
        assert first is not second

    @pytest.mark.parametrize("blob", [
        b"not a pickle",
        b"\x80\x0f.",   # unknown pickle protocol -> plain ValueError
        b"\x80\x05",    # truncated header
        b"",
    ])
    def test_corrupt_blob_is_rebuilt(self, tmp_path, blob):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        store.path_for(_spec()).write_bytes(blob)
        program, from_store = store.load_or_build(_spec())
        assert not from_store
        assert program.has_method("Main.main")

    def test_code_version_isolates_blobs(self, tmp_path):
        old = ProgramStore(tmp_path, code_version="aaaa")
        new = ProgramStore(tmp_path, code_version="bbbb")
        old.load_or_build(_spec())
        assert old.contains(_spec())
        assert not new.contains(_spec())

    def test_clear_removes_blobs(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        # One pickle plus its sibling arena blob.
        assert store.clear() == 2
        assert store.last_gc_bytes > 0
        assert not store.contains(_spec())
        assert store.attach(_spec()) is None


class TestEngineIntegration:
    def test_cache_run_populates_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_specs([_spec()], cache=cache)
        store = ProgramStore(tmp_path / "programs",
                             code_version=cache.code_version)
        assert store.contains(_spec())

    def test_sibling_half_reuses_stored_program(self, tmp_path):
        """Within one run, the second configuration loads the first's blob."""
        store = ProgramStore(tmp_path)
        first = solve_config(_spec(), AnalysisConfig.baseline_pta(), store)
        second = solve_config(_spec(), AnalysisConfig.skipflow(), store)
        assert not first["program_from_store"]
        assert second["program_from_store"]
        assert (store.hits, store.misses) == (1, 1)

    def test_second_engine_run_loads_ir_from_store(self, tmp_path):
        """A later run of the same spec skips program generation entirely."""
        cache = ResultCache(tmp_path)
        run_specs([_spec()], cache=cache)
        store = ProgramStore(tmp_path / "programs",
                             code_version=cache.code_version)
        # A configuration the result cache has not seen forces a solve, which
        # must take its program from the store.
        payload = solve_config(
            _spec(), AnalysisConfig.skipflow().with_saturation_threshold(64),
            store)
        assert payload["program_from_store"]
        assert store.hits == 1

    def test_store_results_bit_identical_to_cold_run(self, tmp_path):
        """Store-backed engine results match a run without any cache/store."""
        cold = run_specs([_spec()])
        cache = ResultCache(tmp_path)
        run_specs([_spec()], cache=cache)  # populates store + result cache
        warm_cache = ResultCache(tmp_path)
        warm = run_specs([_spec()], cache=warm_cache)
        assert warm[0].from_cache
        assert _stable(cold[0]) == _stable(warm[0])

    def test_explicit_store_without_cache(self, tmp_path):
        store = ProgramStore(tmp_path)
        results = run_specs([_spec()], program_store=store)
        assert store.misses == 1
        assert _stable(results[0]) == _stable(run_specs([_spec()])[0])

    def test_parallel_run_with_store_matches_serial(self, tmp_path):
        specs = [_spec(name=f"store-par-{i}", total=60 + 20 * i) for i in range(3)]
        serial = run_specs(specs, jobs=1)
        cache = ResultCache(tmp_path)
        parallel = run_specs(specs, jobs=4, cache=cache)
        assert [_stable(r) for r in serial] == [_stable(r) for r in parallel]

    def test_roundtrip_preserves_solver_steps(self, tmp_path):
        """Engine payloads solved over stored IR carry identical step counts."""
        store = ProgramStore(tmp_path)
        config = AnalysisConfig.skipflow()
        cold = solve_config(_spec(), config)
        store.load_or_build(_spec())
        warm = solve_config(_spec(), config, store)
        assert warm["program_from_store"]
        assert warm["report"]["solver_steps"] == cold["report"]["solver_steps"]
        assert warm["report"]["solver_joins"] == cold["report"]["solver_joins"]
        assert (warm["report"]["reachable_methods"]
                == cold["report"]["reachable_methods"])


class TestArenaAttach:
    def test_store_writes_arena_sibling(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        assert store.arena_path_for(_spec()).is_file()

    def test_attach_returns_arena_program(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        attached = store.attach(_spec())
        assert isinstance(attached, ArenaProgram)
        assert attached.has_method("Main.main")

    def test_attach_or_build_prefers_the_arena(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        program, from_store = store.attach_or_build(_spec())
        assert from_store
        assert isinstance(program, ArenaProgram)

    def test_has_arena_tracks_the_sibling(self, tmp_path):
        """The backfill-gap probe ``repro bench`` reports through."""
        store = ProgramStore(tmp_path)
        assert not store.has_arena(_spec())
        store.load_or_build(_spec())
        assert store.has_arena(_spec())
        store.arena_path_for(_spec()).unlink()
        assert store.contains(_spec())
        assert not store.has_arena(_spec())

    def test_attach_or_build_backfills_missing_arena(self, tmp_path):
        """Stores written before arena blobs existed heal on first touch."""
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        store.arena_path_for(_spec()).unlink()
        program, from_store = store.attach_or_build(_spec())
        assert from_store
        assert isinstance(program, ArenaProgram)
        assert store.arena_path_for(_spec()).is_file()

    @pytest.mark.parametrize("blob", [
        b"not an arena",
        b"RPRA" + b"\x00" * 4,          # truncated header
        b"RPRA\x63\x00\x00\x00" + b"\x00" * 16,  # foreign format version
        b"",
    ])
    def test_corrupt_arena_is_a_miss(self, tmp_path, blob):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        store.arena_path_for(_spec()).write_bytes(blob)
        assert store.attach(_spec()) is None
        # ... and attach_or_build recovers through the pickle + backfill.
        program, _ = store.attach_or_build(_spec())
        assert program.has_method("Main.main")

    def test_attached_solve_is_bit_identical(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        config = AnalysisConfig.skipflow()
        from_arena = SkipFlowAnalysis(
            store.attach(_spec()), config.with_kernel("arena")).run()
        from_fresh = SkipFlowAnalysis(generate_benchmark(_spec()), config).run()
        assert from_arena.reachable_methods == from_fresh.reachable_methods
        assert from_arena.steps == from_fresh.steps
        assert from_arena.stats.joins == from_fresh.stats.joins

    def test_storing_an_attached_arena_writes_the_buffer_back(self, tmp_path):
        store = ProgramStore(tmp_path)
        store.load_or_build(_spec())
        attached = store.attach(_spec())
        other = ProgramStore(tmp_path / "other",
                             code_version=store.code_version)
        other.store(_spec(), attached)
        assert not other.path_for(_spec()).is_file()  # no pickle for arenas
        assert (other.arena_path_for(_spec()).read_bytes()
                == store.arena_path_for(_spec()).read_bytes())

    def test_arena_kernel_config_routes_through_attach(self, tmp_path):
        """The engine's arena-kernel half maps the blob instead of unpickling."""
        store = ProgramStore(tmp_path)
        config = AnalysisConfig.skipflow().with_kernel("arena")
        cold = solve_config(_spec(), AnalysisConfig.skipflow())
        warm = solve_config(_spec(), config, store)
        assert warm["report"]["solver_steps"] == cold["report"]["solver_steps"]
        assert (warm["report"]["reachable_methods"]
                == cold["report"]["reachable_methods"])


class TestKeying:
    def test_key_is_filesystem_safe_hex(self, tmp_path):
        key = ProgramStore(tmp_path).key(_spec())
        assert key == key.lower()
        int(key, 16)

    def test_different_specs_different_blobs(self, tmp_path):
        store = ProgramStore(tmp_path)
        assert store.key(_spec(total=90)) != store.key(_spec(total=120))

    def test_missing_blob_loads_none(self, tmp_path):
        assert ProgramStore(tmp_path).load(_spec()) is None


@pytest.mark.parametrize("config_name", ["baseline_pta", "skipflow",
                                         "predicates_only", "primitives_only"])
def test_every_canonical_config_identical_over_stored_ir(tmp_path, config_name):
    store = ProgramStore(tmp_path)
    store.load_or_build(_spec())
    config = getattr(AnalysisConfig, config_name)()
    from_store = SkipFlowAnalysis(store.load(_spec()), config).run()
    from_fresh = SkipFlowAnalysis(generate_benchmark(_spec()), config).run()
    assert from_store.reachable_methods == from_fresh.reachable_methods
    assert from_store.steps == from_fresh.steps


class TestGc:
    def test_gc_drops_other_versions_and_keeps_current(self, tmp_path):
        current = ProgramStore(tmp_path, code_version="aaaa")
        current.load_or_build(_spec())
        stale = ProgramStore(tmp_path, code_version="bbbb")
        stale.load_or_build(_spec())
        # Pre-versioning flat-named blobs are unidentifiable, hence stale.
        (tmp_path / "deadbeef.pickle").write_bytes(b"x")

        # The foreign version's pickle + arena, plus the flat-named pickle.
        assert current.gc() == 3
        assert current.last_gc_bytes > 0
        assert current.contains(_spec())
        assert current.attach(_spec()) is not None
        assert not stale.contains(_spec())
        assert stale.attach(_spec()) is None

    def test_blob_filenames_carry_the_code_version(self, tmp_path):
        store = ProgramStore(tmp_path, code_version="cafe")
        assert store.path_for(_spec()).name.startswith("cafe-")

    def test_gc_reclaims_orphaned_tmp_files_of_other_versions(self, tmp_path):
        store = ProgramStore(tmp_path, code_version="aaaa")
        stale_tmp = tmp_path / "bbbb-22.pickle.tmp999"
        stale_tmp.write_bytes(b"x")
        live_tmp = tmp_path / "aaaa-33.pickle.tmp999"
        live_tmp.write_bytes(b"x")
        assert store.gc() == 1
        assert not stale_tmp.exists()
        assert live_tmp.exists()

    def test_gc_reclaims_orphaned_arena_buffers(self, tmp_path):
        store = ProgramStore(tmp_path, code_version="aaaa")
        orphan = tmp_path / "bbbb-44.arena"
        orphan.write_bytes(b"x" * 128)
        orphan_tmp = tmp_path / "bbbb-44.arena.tmp999"
        orphan_tmp.write_bytes(b"x" * 64)
        assert store.gc() == 2
        assert store.last_gc_bytes == 192
        assert not orphan.exists()
        assert not orphan_tmp.exists()
