"""The N-way configuration matrix driver and its cache reuse."""

import pytest

from repro.core.analysis import AnalysisConfig
from repro.engine import MatrixRow, ResultCache, run_config_matrix, run_specs
from repro.reporting.table import format_matrix_table, matrix_table_rows
from repro.workloads.generator import spec_from_reduction

SPECS = [
    spec_from_reduction(name="matrix-mid", suite="test",
                        total_methods=90, reduction_percent=10.0),
    spec_from_reduction(name="matrix-small", suite="test",
                        total_methods=60, reduction_percent=15.0),
]


def _three_configs():
    return (
        [AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow(),
         AnalysisConfig.skipflow().with_saturation_threshold(4)],
        ("pta", "skipflow", "skipflow-sat4"),
    )


def _stable(row: MatrixRow) -> dict:
    return {key: value for key, value in row.as_dict().items()
            if "time" not in key}


class TestMatrixRows:
    def test_rows_follow_input_order_with_named_columns(self):
        configs, names = _three_configs()
        rows = run_config_matrix(SPECS, configs, names=names, jobs=4)
        assert [row.benchmark for row in rows] == [spec.name for spec in SPECS]
        assert all(row.names == names for row in rows)

    def test_columns_match_the_pairwise_runner(self):
        configs, names = _three_configs()
        rows = run_config_matrix(SPECS, configs, names=names)
        pairwise = run_specs(SPECS)
        for row, comparison in zip(rows, pairwise):
            assert row.report("pta").metrics == comparison.baseline.metrics
            assert row.report("skipflow").metrics == comparison.skipflow.metrics
            assert row.metric("reachable_methods", "skipflow") == \
                comparison.metric("reachable_methods", "skipflow")

    def test_reference_column_normalization(self):
        configs, names = _three_configs()
        row = run_config_matrix(SPECS[:1], configs, names=names)[0]
        assert row.normalized("reachable_methods", "pta") == 1.0
        assert 0.0 < row.normalized("reachable_methods", "skipflow") < 1.0
        assert row.reduction_percent("reachable_methods", "skipflow") > 0.0
        with pytest.raises(KeyError):
            row.report("rta")

    def test_parallel_matches_serial(self):
        configs, names = _three_configs()
        serial = run_config_matrix(SPECS, configs, names=names, jobs=1)
        parallel = run_config_matrix(SPECS, configs, names=names, jobs=4)
        assert [_stable(row) for row in serial] == [_stable(row) for row in parallel]


class TestMatrixValidation:
    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_config_matrix(SPECS, [AnalysisConfig.skipflow(),
                                      AnalysisConfig.skipflow()])

    def test_name_count_must_match_config_count(self):
        with pytest.raises(ValueError, match="names"):
            run_config_matrix(SPECS, [AnalysisConfig.skipflow()],
                              names=("a", "b"))

    def test_at_least_one_config_required(self):
        with pytest.raises(ValueError, match="at least one"):
            run_config_matrix(SPECS, [])


class TestMatrixCaching:
    def test_matrix_reuses_halves_cached_by_pairwise_runs(self, tmp_path):
        """Every shared half is solved once across pairwise and N-way runs."""
        configs, names = _three_configs()
        warmup_cache = ResultCache(tmp_path)
        run_specs(SPECS, cache=warmup_cache)  # caches pta + skipflow halves

        matrix_cache = ResultCache(tmp_path)
        rows = run_config_matrix(SPECS, configs, names=names,
                                 cache=matrix_cache)
        # pta and skipflow halves hit; only the saturated column computes.
        assert matrix_cache.hits == 2 * len(SPECS)
        assert matrix_cache.misses == len(SPECS)
        for row in rows:
            assert row.run("pta").from_cache
            assert row.run("skipflow").from_cache
            assert not row.run("skipflow-sat4").from_cache
            assert not row.from_cache

        # A second matrix run is served entirely from the cache.
        rerun_cache = ResultCache(tmp_path)
        rerun = run_config_matrix(SPECS, configs, names=names,
                                  cache=rerun_cache)
        assert rerun_cache.hits == 3 * len(SPECS) and rerun_cache.misses == 0
        assert all(row.from_cache for row in rerun)
        assert [_stable(row) for row in rows] == [_stable(row) for row in rerun]

    def test_progress_called_once_per_row(self):
        configs, names = _three_configs()
        seen = []
        run_config_matrix(SPECS, configs, names=names,
                          progress=lambda spec, row: seen.append(spec.name))
        assert sorted(seen) == sorted(spec.name for spec in SPECS)


class TestMatrixReporting:
    def test_table_has_one_line_per_configuration(self):
        configs, names = _three_configs()
        rows = run_config_matrix(SPECS, configs, names=names)
        structured = matrix_table_rows(rows)
        assert len(structured) == len(SPECS) * len(configs)
        reference_rows = [r for r in structured if r["configuration"] == "pta"]
        assert all("(" not in r["reachable_methods"] for r in reference_rows)
        delta_rows = [r for r in structured if r["configuration"] != "pta"]
        assert all("%" in r["reachable_methods"] for r in delta_rows)

    def test_format_matrix_table_renders_all_columns(self):
        configs, names = _three_configs()
        rows = run_config_matrix(SPECS, configs, names=names)
        text = format_matrix_table(rows, title="3-way")
        assert text.startswith("3-way")
        for name in names:
            assert name in text
        for spec in SPECS:
            assert spec.name in text
