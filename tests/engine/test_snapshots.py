"""The engine's snapshot store: keying, round-trips, crash-safety, GC."""

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.engine import SnapshotStore
from repro.workloads.edits import build_edit_delta, default_edit_script
from repro.workloads.generator import generate_benchmark, spec_from_reduction

SPEC = spec_from_reduction(name="snap-small", suite="test",
                           total_methods=70, reduction_percent=10.0)
OTHER_SPEC = spec_from_reduction(name="snap-other", suite="test",
                                 total_methods=70, reduction_percent=10.0)
CONFIG = AnalysisConfig.skipflow()


def solved_state(program=None):
    program = program if program is not None else generate_benchmark(SPEC)
    return SkipFlowAnalysis(program, CONFIG).run(), program


class TestKeying:
    def test_distinct_per_spec_and_config(self, tmp_path):
        store = SnapshotStore(tmp_path)
        keys = {
            store.key(SPEC, CONFIG),
            store.key(OTHER_SPEC, CONFIG),
            store.key(SPEC, AnalysisConfig.baseline_pta()),
            store.key(SPEC, CONFIG.with_saturation_threshold(8)),
            store.key(SPEC, CONFIG.with_scheduling("degree")),
        }
        assert len(keys) == 5

    def test_edit_script_prefixes_key_distinctly(self, tmp_path):
        store = SnapshotStore(tmp_path)
        script = default_edit_script(SPEC, steps=3)
        keys = {store.key(script.prefix(count), CONFIG)
                for count in range(4)}
        assert len(keys) == 4

    def test_filenames_carry_the_code_version(self, tmp_path):
        store = SnapshotStore(tmp_path, code_version="cafe")
        assert store.path_for(SPEC, CONFIG).name.startswith("cafe-")


class TestRoundTrip:
    def test_store_load_resume(self, tmp_path):
        result, program = solved_state()
        store = SnapshotStore(tmp_path)
        store.store(SPEC, CONFIG, result.solver_state, program)
        assert store.contains(SPEC, CONFIG)

        reread = SnapshotStore(tmp_path)
        state = reread.load(SPEC, CONFIG)
        assert state is not None and reread.hits == 1
        before = state.counters()
        resumed = SkipFlowAnalysis(program, CONFIG, state=state).run()
        assert resumed.steps - before["steps"] == 0
        assert resumed.reachable_methods == result.reachable_methods

    def test_stored_snapshot_is_stamped(self, tmp_path):
        result, program = solved_state()
        store = SnapshotStore(tmp_path)
        store.store(SPEC, CONFIG, result.solver_state, program)
        state = store.load(SPEC, CONFIG)
        assert state.fingerprint is not None

    def test_resume_across_an_edit(self, tmp_path):
        result, program = solved_state()
        store = SnapshotStore(tmp_path)
        store.store(SPEC, CONFIG, result.solver_state, program)

        script = default_edit_script(SPEC, steps=1)
        build_edit_delta(SPEC, script.steps[0]).apply_to(
            program, require_monotone=True)
        state = store.load(SPEC, CONFIG)
        before = state.counters()
        warm = SkipFlowAnalysis(program, CONFIG, state=state).run()
        cold = SkipFlowAnalysis(program, CONFIG).run()
        assert warm.reachable_methods == cold.reachable_methods
        assert warm.steps - before["steps"] < cold.steps

    def test_missing_and_corrupt_blobs_are_misses(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load(SPEC, CONFIG) is None
        store.path_for(SPEC, CONFIG).write_bytes(b"garbage")
        assert store.load(SPEC, CONFIG) is None
        assert store.misses == 2 and store.hits == 0


class TestMaintenance:
    def test_clear(self, tmp_path):
        result, program = solved_state()
        store = SnapshotStore(tmp_path)
        store.store(SPEC, CONFIG, result.solver_state, program)
        assert store.clear() == 1
        assert not store.contains(SPEC, CONFIG)

    def test_gc_drops_only_foreign_versions(self, tmp_path):
        result, program = solved_state()
        store = SnapshotStore(tmp_path)
        store.store(SPEC, CONFIG, result.solver_state, program)
        stale = SnapshotStore(tmp_path, code_version="feedface")
        stale.store(SPEC, CONFIG, result.solver_state, program)
        (tmp_path / "feedface-orphan.state.tmp123").write_bytes(b"x")

        assert store.gc() == 2  # the stale blob and the orphan temp file
        assert store.contains(SPEC, CONFIG)
        assert not stale.contains(SPEC, CONFIG)
