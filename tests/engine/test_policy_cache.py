"""Policy-aware cache keying and the per-process program memo."""

from repro.core.analysis import AnalysisConfig
from repro.engine import ProgramStore, ResultCache, run_config_matrix, run_specs
from repro.engine.runner import _WORKER_PROGRAMS, solve_config
from repro.workloads.generator import spec_from_reduction


def _spec(name="policy-spec", total=80):
    return spec_from_reduction(name=name, suite="test",
                               total_methods=total, reduction_percent=10.0)


def _policy_configs():
    skipflow = AnalysisConfig.skipflow()
    return {
        "fifo/off": skipflow,
        "lifo/off": skipflow.with_scheduling("lifo"),
        "fifo/closed-world": skipflow.with_saturation_threshold(64),
        "fifo/declared-type": skipflow.with_saturation_policy(
            "declared-type", 64),
        "lifo/declared-type": (skipflow.with_scheduling("lifo")
                               .with_saturation_policy("declared-type", 64)),
    }


class TestPolicyKeying:
    def test_every_policy_half_keyed_distinctly(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = {cache.config_key(_spec(), config)
                for config in _policy_configs().values()}
        assert len(keys) == len(_policy_configs())

    def test_same_policy_same_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        again = AnalysisConfig.skipflow().with_scheduling("lifo")
        assert (cache.config_key(_spec(), _policy_configs()["lifo/off"])
                == cache.config_key(_spec(), again))

    def test_policy_matrix_reuses_the_default_half(self, tmp_path):
        """A policy matrix shares the fifo/off half with a plain run."""
        warm_cache = ResultCache(tmp_path)
        run_specs([_spec()], cache=warm_cache)  # caches pta + skipflow halves

        configs = _policy_configs()
        matrix_cache = ResultCache(tmp_path)
        rows = run_config_matrix([_spec()], list(configs.values()),
                                 names=list(configs), cache=matrix_cache)
        assert matrix_cache.hits == 1          # the fifo/off half
        assert matrix_cache.misses == len(configs) - 1
        row = rows[0]
        assert row.run("fifo/off").from_cache
        # Saturation at 64 never fires on this small spec, and scheduling
        # never changes the fixpoint: all five columns agree on reachability.
        assert len({run.report.metrics.reachable_methods
                    for run in row.runs}) == 1


class TestProgramMemo:
    def test_policy_matrix_unpickles_the_ir_once(self, tmp_path):
        """N policy halves of one spec share one deserialized program."""
        _WORKER_PROGRAMS.clear()
        store = ProgramStore(tmp_path)
        configs = list(_policy_configs().values())
        for config in configs:
            payload = solve_config(_spec(), config, store)
            assert payload["program_from_store"] == (config is not configs[0])
        # One generation (the first half), zero further disk loads: the
        # remaining halves hit the process memo, which counts as store hits.
        assert store.misses == 1
        assert store.hits == len(configs) - 1

    def test_memo_results_identical_to_fresh_generation(self, tmp_path):
        _WORKER_PROGRAMS.clear()
        store = ProgramStore(tmp_path)
        config = AnalysisConfig.skipflow()
        cold = solve_config(_spec(), config)           # no store, fresh IR
        solve_config(_spec(), AnalysisConfig.baseline_pta(), store)
        warm = solve_config(_spec(), config, store)    # memo-shared program
        assert warm["program_from_store"]
        assert warm["report"]["solver_steps"] == cold["report"]["solver_steps"]
        assert warm["report"]["solver_joins"] == cold["report"]["solver_joins"]
        assert (warm["report"]["reachable_methods"]
                == cold["report"]["reachable_methods"])

    def test_memo_is_keyed_by_blob_path(self, tmp_path):
        _WORKER_PROGRAMS.clear()
        first = ProgramStore(tmp_path / "a")
        second = ProgramStore(tmp_path / "b")
        solve_config(_spec(), AnalysisConfig.skipflow(), first)
        payload = solve_config(_spec(), AnalysisConfig.skipflow(), second)
        # A different store directory is a different blob path: no memo hit.
        assert not payload["program_from_store"]
        assert second.misses == 1
