"""The parallel benchmark runner: determinism, ordering, and cache behavior."""

import pytest

from repro.core.analysis import AnalysisConfig
from repro.engine import ResultCache, run_specs
from repro.engine.runner import PAYLOAD_VERSION, result_from_payload, solve_spec
from repro.engine.scheduler import estimated_cost, order_by_cost
from repro.workloads.generator import spec_from_reduction

#: Deliberately out of size order so scheduling and result ordering differ.
SPECS = [
    spec_from_reduction(name="runner-mid", suite="test",
                        total_methods=90, reduction_percent=10.0),
    spec_from_reduction(name="runner-big", suite="test",
                        total_methods=140, reduction_percent=8.0),
    spec_from_reduction(name="runner-small", suite="test",
                        total_methods=60, reduction_percent=15.0),
]


def _stable_dict(result):
    """Result metrics without the host-dependent wall-clock values."""
    return {key: value for key, value in result.as_dict().items()
            if "time" not in key}


class TestDeterminism:
    def test_parallel_matches_serial(self):
        serial = run_specs(SPECS, jobs=1)
        parallel = run_specs(SPECS, jobs=4)
        assert [_stable_dict(r) for r in serial] == [_stable_dict(r) for r in parallel]

    def test_results_follow_input_order(self):
        results = run_specs(SPECS, jobs=4)
        assert [r.benchmark for r in results] == [s.name for s in SPECS]

    def test_reporting_api_compatibility(self):
        result = run_specs(SPECS[:1])[0]
        assert result.skipflow.reachable_methods < result.baseline.reachable_methods
        assert 0.0 < result.normalized("reachable_methods") < 1.0
        assert result.reachable_method_reduction_percent > 0.0
        assert result.metric("binary_size", "baseline") > 0.0


class TestCacheIntegration:
    def test_second_run_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_specs(SPECS, jobs=1, cache=cache)
        assert cache.misses == len(SPECS) and cache.hits == 0
        assert all(not r.from_cache for r in first)

        cache_again = ResultCache(tmp_path)
        second = run_specs(SPECS, jobs=1, cache=cache_again)
        assert cache_again.hits == len(SPECS) and cache_again.misses == 0
        assert all(r.from_cache for r in second)
        assert [r.as_dict() for r in first] == [r.as_dict() for r in second]

    def test_saturation_threshold_misses_exact_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_specs(SPECS[:1], cache=cache)
        cache_again = ResultCache(tmp_path)
        run_specs(SPECS[:1], cache=cache_again,
                  skipflow_config=AnalysisConfig.skipflow().with_saturation_threshold(64))
        assert cache_again.misses == 1 and cache_again.hits == 0


class TestPayloads:
    def test_unknown_payload_version_rejected(self):
        payload = solve_spec(SPECS[2], AnalysisConfig.baseline_pta(),
                             AnalysisConfig.skipflow())
        assert payload["payload_version"] == PAYLOAD_VERSION
        payload["payload_version"] = PAYLOAD_VERSION + 1
        with pytest.raises(ValueError):
            result_from_payload(payload)


class TestScheduler:
    def test_orders_largest_first(self):
        order = order_by_cost(SPECS)
        costs = [estimated_cost(SPECS[i]) for i in order]
        assert costs == sorted(costs, reverse=True)
        assert order[0] == 1  # runner-big

    def test_stable_for_equal_costs(self):
        specs = [SPECS[0], SPECS[0], SPECS[0]]
        assert order_by_cost(specs) == [0, 1, 2]
