"""The parallel benchmark runner: determinism, ordering, and half composition."""

import pytest

from repro.core.analysis import AnalysisConfig
from repro.engine import ProgramStore, ResultCache, run_specs
from repro.engine.runner import (
    PAYLOAD_VERSION,
    result_from_halves,
    solve_config,
    view_from_half,
)
from repro.engine.scheduler import estimated_cost, order_by_cost
from repro.workloads.generator import BenchmarkSpec, HierarchySpec, spec_from_reduction

#: Deliberately out of size order so scheduling and result ordering differ.
SPECS = [
    spec_from_reduction(name="runner-mid", suite="test",
                        total_methods=90, reduction_percent=10.0),
    spec_from_reduction(name="runner-big", suite="test",
                        total_methods=140, reduction_percent=8.0),
    spec_from_reduction(name="runner-small", suite="test",
                        total_methods=60, reduction_percent=15.0),
]

#: Configuration halves per comparison.
HALVES = 2


def _stable_dict(result):
    """Result metrics without the host-dependent wall-clock values."""
    return {key: value for key, value in result.as_dict().items()
            if "time" not in key}


class TestDeterminism:
    def test_parallel_matches_serial(self):
        serial = run_specs(SPECS, jobs=1)
        parallel = run_specs(SPECS, jobs=4)
        assert [_stable_dict(r) for r in serial] == [_stable_dict(r) for r in parallel]

    def test_results_follow_input_order(self):
        results = run_specs(SPECS, jobs=4)
        assert [r.benchmark for r in results] == [s.name for s in SPECS]

    def test_reporting_api_compatibility(self):
        result = run_specs(SPECS[:1])[0]
        assert result.skipflow.reachable_methods < result.baseline.reachable_methods
        assert 0.0 < result.normalized("reachable_methods") < 1.0
        assert result.reachable_method_reduction_percent > 0.0
        assert result.metric("binary_size", "baseline") > 0.0


class TestCacheIntegration:
    def test_second_run_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_specs(SPECS, jobs=1, cache=cache)
        assert cache.misses == HALVES * len(SPECS) and cache.hits == 0
        assert all(not r.from_cache for r in first)

        cache_again = ResultCache(tmp_path)
        second = run_specs(SPECS, jobs=1, cache=cache_again)
        assert cache_again.hits == HALVES * len(SPECS) and cache_again.misses == 0
        assert all(r.from_cache for r in second)
        assert all(r.baseline_from_cache and r.skipflow_from_cache for r in second)
        assert [r.as_dict() for r in first] == [r.as_dict() for r in second]

    def test_ablation_run_reuses_shared_baseline(self, tmp_path):
        """Changing only the SkipFlow config hits every cached baseline half."""
        cache = ResultCache(tmp_path)
        run_specs(SPECS, cache=cache)

        cache_again = ResultCache(tmp_path)
        results = run_specs(
            SPECS, cache=cache_again,
            skipflow_config=AnalysisConfig.skipflow().with_saturation_threshold(64))
        assert cache_again.hits == len(SPECS)        # every baseline half
        assert cache_again.misses == len(SPECS)      # every SkipFlow half
        for result in results:
            assert result.baseline_from_cache
            assert not result.skipflow_from_cache
            assert not result.from_cache  # only half of it came from the cache

    def test_sweep_computes_baseline_exactly_once(self, tmp_path):
        """A 5-point saturation sweep over a wide-hierarchy spec analyzes the
        unsaturated baseline exactly once, and a second engine run of the
        same spec loads IR from the program store instead of rebuilding it,
        bit-identical to a cold run."""
        spec = BenchmarkSpec(
            name="wide-sweep", suite="test", core_methods=20,
            guarded_modules=(),
            hierarchies=(HierarchySpec(depth=1, fanout=12, call_sites=3),))
        cold = run_specs([spec])[0]  # no cache, no store

        cache = ResultCache(tmp_path)
        sweep_results = []
        for threshold in (2, 4, 8, 16, None):
            config = AnalysisConfig.skipflow().with_saturation_threshold(threshold)
            sweep_results.append(run_specs([spec], cache=cache,
                                           skipflow_config=config)[0])
        # 5 SkipFlow halves + 1 baseline half computed; the other 4 sweep
        # points served the shared baseline from the cache.
        assert cache.misses == 5 + 1
        assert cache.hits == 4
        assert sum(1 for r in sweep_results if not r.baseline_from_cache) == 1

        # Second engine run against a fresh result cache but the populated
        # program store: both halves must load IR blobs, and the numbers
        # must match the cold run exactly.
        store = ProgramStore(tmp_path / "programs",
                             code_version=cache.code_version)
        assert store.contains(spec)
        fresh_cache = ResultCache(tmp_path / "fresh")
        warm = run_specs([spec], cache=fresh_cache, program_store=store)[0]
        assert store.hits == 2  # baseline and SkipFlow halves both reused IR
        assert _stable_dict(warm) == _stable_dict(cold)

    def test_stale_payload_recounted_as_miss(self, tmp_path):
        """An unreadable cached half is recomputed and counted as a miss."""
        cache = ResultCache(tmp_path)
        spec = SPECS[2]
        baseline = AnalysisConfig.baseline_pta()
        cache.put(cache.config_key(spec, baseline),
                  {"payload_version": PAYLOAD_VERSION + 1})
        results = run_specs([spec], cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        assert not results[0].baseline_from_cache

    def test_saturation_threshold_misses_exact_skipflow_half(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_specs(SPECS[:1], cache=cache)
        cache_again = ResultCache(tmp_path)
        run_specs(SPECS[:1], cache=cache_again,
                  skipflow_config=AnalysisConfig.skipflow().with_saturation_threshold(64))
        assert cache_again.misses == 1 and cache_again.hits == 1


class TestPayloads:
    def test_unknown_payload_version_rejected(self):
        payload = solve_config(SPECS[2], AnalysisConfig.skipflow())
        assert payload["payload_version"] == PAYLOAD_VERSION
        payload["payload_version"] = PAYLOAD_VERSION + 1
        with pytest.raises(ValueError):
            view_from_half(payload)

    def test_halves_compose_into_comparison(self):
        baseline = solve_config(SPECS[2], AnalysisConfig.baseline_pta())
        skipflow = solve_config(SPECS[2], AnalysisConfig.skipflow())
        result = result_from_halves(baseline, skipflow,
                                    baseline_from_cache=True)
        assert result.benchmark == SPECS[2].name
        assert result.baseline.configuration == "PTA"
        assert result.skipflow.configuration == "SkipFlow"
        assert result.baseline_from_cache and not result.skipflow_from_cache
        assert not result.from_cache
        assert result.elapsed_seconds == pytest.approx(
            baseline["elapsed_seconds"] + skipflow["elapsed_seconds"])

    def test_mismatched_halves_rejected(self):
        baseline = solve_config(SPECS[0], AnalysisConfig.baseline_pta())
        skipflow = solve_config(SPECS[2], AnalysisConfig.skipflow())
        with pytest.raises(ValueError):
            result_from_halves(baseline, skipflow)

    def test_engine_matches_direct_comparison(self):
        """Composed halves carry the same numbers as the reporting-layer path."""
        from repro.reporting.records import compare_configurations

        direct = compare_configurations(SPECS[2])
        engine = run_specs(SPECS[2:])[0]
        for metric in ("reachable_methods", "type_checks", "null_checks",
                       "prim_checks", "poly_calls", "binary_size"):
            assert engine.metric(metric, "baseline") == direct.metric(metric, "baseline")
            assert engine.metric(metric, "skipflow") == direct.metric(metric, "skipflow")


class TestScheduler:
    def test_orders_largest_first(self):
        order = order_by_cost(SPECS)
        costs = [estimated_cost(SPECS[i]) for i in order]
        assert costs == sorted(costs, reverse=True)
        assert order[0] == 1  # runner-big

    def test_stable_for_equal_costs(self):
        specs = [SPECS[0], SPECS[0], SPECS[0]]
        assert order_by_cost(specs) == [0, 1, 2]
