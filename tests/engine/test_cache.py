"""Cache key stability and invalidation for the per-configuration cache."""

from repro.core.analysis import AnalysisConfig
from repro.engine.cache import ResultCache, compute_code_version, hash_dataclass
from repro.workloads.generator import spec_from_reduction


def _spec(name="cache-spec", total=80, reduction=10.0):
    return spec_from_reduction(name=name, suite="test",
                               total_methods=total, reduction_percent=reduction)


def _configs():
    return AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow()


class TestKeyStability:
    def test_same_inputs_same_key(self, tmp_path):
        baseline, _ = _configs()
        first = ResultCache(tmp_path / "a")
        second = ResultCache(tmp_path / "b")
        assert (first.config_key(_spec(), baseline)
                == second.config_key(_spec(), baseline))

    def test_key_is_filesystem_safe_hex(self, tmp_path):
        baseline, _ = _configs()
        key = ResultCache(tmp_path).config_key(_spec(), baseline)
        assert key == key.lower()
        int(key, 16)  # raises if not hex

    def test_hash_dataclass_is_deterministic(self):
        assert hash_dataclass(_spec()) == hash_dataclass(_spec())

    def test_code_version_is_memoized_and_stable(self):
        assert compute_code_version() == compute_code_version()


class TestKeyInvalidation:
    def test_different_spec_different_key(self, tmp_path):
        baseline, _ = _configs()
        cache = ResultCache(tmp_path)
        assert (cache.config_key(_spec(total=80), baseline)
                != cache.config_key(_spec(total=81), baseline))

    def test_config_switch_changes_key(self, tmp_path):
        _, skipflow = _configs()
        cache = ResultCache(tmp_path)
        exact = cache.config_key(_spec(), skipflow)
        saturated = cache.config_key(_spec(),
                                     skipflow.with_saturation_threshold(8))
        assert exact != saturated

    def test_configs_cached_independently(self, tmp_path):
        """The two halves of one comparison have distinct keys."""
        baseline, skipflow = _configs()
        cache = ResultCache(tmp_path)
        assert (cache.config_key(_spec(), baseline)
                != cache.config_key(_spec(), skipflow))

    def test_code_version_changes_key(self, tmp_path):
        baseline, _ = _configs()
        old = ResultCache(tmp_path, code_version="aaaa")
        new = ResultCache(tmp_path, code_version="bbbb")
        assert (old.config_key(_spec(), baseline)
                != new.config_key(_spec(), baseline))


class TestEntries:
    def test_put_get_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("deadbeef") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("deadbeef", {"value": 42})
        assert cache.get("deadbeef") == {"value": 42}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_contains_does_not_touch_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.contains("deadbeef")
        cache.put("deadbeef", {})
        assert cache.contains("deadbeef")
        assert (cache.hits, cache.misses) == (0, 0)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("deadbeef").write_text("{not json")
        assert cache.get("deadbeef") is None
        assert cache.misses == 1

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa", {})
        cache.put("bb", {})
        assert cache.clear() == 2
        assert not cache.contains("aa")

    def test_entry_filenames_carry_the_code_version(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="cafe")
        assert cache.path_for("deadbeef").name == "cafe-deadbeef.json"


class TestGc:
    def test_gc_drops_other_versions_and_keeps_current(self, tmp_path):
        current = ResultCache(tmp_path, code_version="aaaa")
        current.put("11", {"v": 1})
        stale = ResultCache(tmp_path, code_version="bbbb")
        stale.put("22", {"v": 2})
        # Pre-versioning flat-named entries are unidentifiable, hence stale.
        (tmp_path / "deadbeef.json").write_text("{}")

        assert current.gc() == 2
        assert current.contains("11")
        assert not stale.contains("22")
        assert not (tmp_path / "deadbeef.json").exists()

    def test_gc_on_fresh_cache_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("11", {})
        assert cache.gc() == 0
        assert cache.contains("11")

    def test_gc_reclaims_orphaned_tmp_files_of_other_versions(self, tmp_path):
        """Crashed writers leave .tmp files behind; stale-version ones are
        junk, current-version ones may be in-flight and are kept."""
        cache = ResultCache(tmp_path, code_version="aaaa")
        stale_tmp = tmp_path / "bbbb-22.json.tmp999"
        stale_tmp.write_text("{")
        live_tmp = tmp_path / "aaaa-33.json.tmp999"
        live_tmp.write_text("{")
        assert cache.gc() == 1
        assert not stale_tmp.exists()
        assert live_tmp.exists()
