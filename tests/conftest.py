"""Shared fixtures: hand-built programs used across the test suite.

Also registers the suite-wide hypothesis profile: property tests here
build and solve whole programs per example, so the per-example deadline is
off and the too-slow health check suppressed *once*, instead of every
test repeating its own ``settings(deadline=None, ...)`` copy.  Tests only
override ``max_examples``.  CI pins the generation seed with
``--hypothesis-seed`` (see ``.github/workflows/ci.yml``) so a red property
test reproduces locally with the same examples.
"""

from __future__ import annotations

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import CompareOp
from repro.ir.program import Program

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover — hypothesis ships with [dev]
    pass
else:
    settings.register_profile(
        "repro", deadline=None,
        suppress_health_check=[HealthCheck.too_slow])
    settings.load_profile("repro")


def build_virtual_threads_program(use_virtual_threads: bool = False) -> Program:
    """The JDK motivating example of Figure 2, built directly as IR.

    ``SharedThreadContainer.onExit(Thread)`` removes the thread from a set iff
    ``thread.isVirtual()`` returns true; ``Thread.isVirtual()`` is an
    ``instanceof BaseVirtualThread`` check.  When ``use_virtual_threads`` is
    False the application never instantiates a virtual thread, so SkipFlow
    must prove the ``remove()`` call unreachable.
    """
    pb = ProgramBuilder()
    pb.declare_class("Thread")
    pb.declare_class("BaseVirtualThread", superclass="Thread")
    pb.declare_class("VirtualThread", superclass="BaseVirtualThread")
    pb.declare_class("ThreadSet")
    pb.declare_class("SharedThreadContainer")
    pb.declare_class("Main")
    pb.declare_field("SharedThreadContainer", "virtualThreads", "ThreadSet")

    # Thread.isVirtual(): return this instanceof BaseVirtualThread ? 1 : 0
    mb = pb.method("Thread", "isVirtual", return_type="int")
    mb.if_instanceof(mb.receiver, "BaseVirtualThread", "yes", "no")
    mb.label("yes")
    one = mb.assign_int(1)
    mb.jump("done", [one])
    mb.label("no")
    zero = mb.assign_int(0)
    mb.jump("done", [zero])
    result = mb.merge("done", ["result"])[0]
    mb.return_(result)
    pb.finish_method(mb)

    # ThreadSet.remove(Thread)
    mb = pb.method("ThreadSet", "remove", params=["Thread"])
    mb.return_void()
    pb.finish_method(mb)

    # SharedThreadContainer.onExit(Thread):
    #   if (thread.isVirtual() != 0) { virtualThreads.remove(thread); }
    mb = pb.method("SharedThreadContainer", "onExit", params=["Thread"],
                   param_names=["thread"])
    thread = mb.param(0)
    is_virtual = mb.invoke_virtual(thread, "isVirtual", result_type="int")
    zero = mb.assign_int(0)
    mb.if_compare(CompareOp.NE, is_virtual, zero, "virtual", "not_virtual")
    mb.label("virtual")
    threads = mb.load_field(mb.receiver, "virtualThreads", "ThreadSet")
    mb.invoke_virtual(threads, "remove", [thread])
    mb.jump("exit", [])
    mb.label("not_virtual")
    mb.jump("exit", [])
    mb.merge("exit", [])
    mb.return_void()
    pb.finish_method(mb)

    # Main.main(): allocate the container and the threads, call onExit.
    mb = pb.method("Main", "main", is_static=True)
    container = mb.assign_new("SharedThreadContainer")
    threads_set = mb.assign_new("ThreadSet")
    mb.store_field(container, "virtualThreads", threads_set)
    if use_virtual_threads:
        thread = mb.assign_new("VirtualThread")
    else:
        thread = mb.assign_new("Thread")
    mb.invoke_virtual(container, "onExit", [thread])
    mb.return_void()
    pb.finish_method(mb)

    pb.add_entry_point("Main.main")
    return pb.build()


@pytest.fixture
def virtual_threads_program() -> Program:
    return build_virtual_threads_program(use_virtual_threads=False)


@pytest.fixture
def virtual_threads_program_with_virtual() -> Program:
    return build_virtual_threads_program(use_virtual_threads=True)
