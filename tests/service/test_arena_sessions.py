"""Arena-backed service sessions: zero-decode open, thaw-on-edit, spill.

Benchmark sessions attach the program store's arena blob instead of
unpickling (the tentpole's decode win carried into the service layer).
The invariants under test: analyzers read the attached arena directly and
produce byte-identical reports; the first *edit* thaws the read-only arena
into a mutable twin; spill/rehydrate keeps arena backing for unedited
sessions and re-freezes edited ones so rehydration is arena-backed again.
"""

import pytest

from repro.ir.arena import ArenaProgram
from repro.service import SessionManager

BENCHMARK = "wide-flat-64"


@pytest.fixture
def manager(tmp_path):
    return SessionManager(max_live_sessions=4, spill_dir=tmp_path / "spill")


def _program(manager, name):
    return manager._sessions[name].session.program


class TestZeroDecodeOpen:
    def test_benchmark_sessions_attach_an_arena(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        assert isinstance(_program(manager, "s"), ArenaProgram)

    def test_source_sessions_stay_plain_programs(self, manager):
        manager.open("s", source="class Main { static void main() { } }")
        assert not isinstance(_program(manager, "s"), ArenaProgram)

    def test_analyze_reads_the_arena_in_place(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        cold = manager.analyze("s", "skipflow")
        assert cold["mode"] == "cold"
        # Read-only analysis never forces a thaw.
        assert isinstance(_program(manager, "s"), ArenaProgram)

    def test_arena_session_reports_match_a_pickled_one(self, manager, tmp_path):
        manager.open("s", benchmark=BENCHMARK)
        arena_report = manager.analyze("s", "skipflow")["report"]
        plain = SessionManager(spill_dir=tmp_path / "plain")
        plain.open("s", benchmark=BENCHMARK)
        plain_report = plain.analyze("s", "skipflow")["report"]
        def strip(report):
            clean = dict(report, metrics=dict(report["metrics"]))
            clean["metrics"].pop("analysis_time_seconds")
            return clean

        assert strip(arena_report) == strip(plain_report)


class TestThawOnEdit:
    def test_first_edit_thaws_the_arena(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        cold = manager.analyze("s", "skipflow")
        manager.update("s", edit={"kind": "add-variant", "index": 0})
        warm = manager.analyze("s", "skipflow")
        assert warm["mode"] == "warm"
        assert 0 < warm["steps_paid"] < cold["steps_paid"]
        # The mutable twin replaced the read-only mmap façade.
        assert not isinstance(_program(manager, "s"), ArenaProgram)


class TestSpillAndRehydrate:
    def test_unedited_session_rehydrates_arena_backed(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        cold = manager.analyze("s", "skipflow")
        assert manager.evict("s")["evicted"]
        cached = manager.analyze("s", "skipflow")
        assert cached["mode"] == "cached"
        assert cached["report"] == cold["report"]
        assert isinstance(_program(manager, "s"), ArenaProgram)

    def test_edited_session_refreezes_at_spill(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        manager.analyze("s", "skipflow")
        manager.update("s", edit={"kind": "add-variant", "index": 0})
        warm = manager.analyze("s", "skipflow")
        assert manager.evict("s")["evicted"]
        # The spill froze the edited program, so rehydration attaches the
        # fresh arena rather than unpickling.
        cached = manager.analyze("s", "skipflow")
        assert cached["mode"] == "cached"
        assert cached["report"] == warm["report"]
        assert isinstance(_program(manager, "s"), ArenaProgram)

    def test_edit_after_rehydrate_still_resumes_warm(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        cold = manager.analyze("s", "skipflow")
        manager.evict("s")
        manager.update("s", edit={"kind": "add-variant", "index": 0})
        warm = manager.analyze("s", "skipflow")
        assert warm["mode"] == "warm"
        assert 0 < warm["steps_paid"] < cold["steps_paid"]


class TestKernelOption:
    def test_arena_kernel_option_rides_the_wire_schema(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        reference = manager.analyze("s", "skipflow")
        arena = manager.analyze("s", "skipflow",
                                options={"kernel": "arena"})
        assert arena["mode"] == "cold"  # its own (analyzer, options) slot
        ref_stats = reference["report"]["solver_stats"]
        arena_stats = arena["report"]["solver_stats"]
        assert arena_stats["steps"] == ref_stats["steps"]
        assert arena_stats["joins"] == ref_stats["joins"]
        assert (arena["report"]["call_graph"]
                == reference["report"]["call_graph"])
