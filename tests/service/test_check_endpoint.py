"""The check surface of the service: ``/v1/check`` and audit-on-analyze.

Two gating semantics under test: ``check`` *reports* diagnostics (HTTP 200
whatever it finds — the caller asked to see them), while ``analyze`` with
``audit`` *gates* the artifact (a failing audit is a
:class:`CheckFailedError`, HTTP 500 — the daemon must not serve a result
whose fixpoint does not re-audit).
"""

import pytest

from repro.api.errors import CheckFailedError
from repro.service import ServiceClient, SessionManager, serving
from repro.service.client import ServiceClientError

SOURCE = """
class Greeter {
    int greet() { return 1; }
}
class Main {
    static void main() {
        Greeter greeter = new Greeter();
        greeter.greet();
    }
}
"""

# The Attic class plants one advisory IR002 lint warning.
WARNING_SOURCE = SOURCE + """
class Attic {
    void dusty() { }
}
"""


@pytest.fixture
def manager(tmp_path):
    return SessionManager(max_live_sessions=4, spill_dir=tmp_path / "spill")


def _corrupt_slot(manager, name):
    """Flip a worklist bit in every solved slot — a mid-solve state."""
    managed = manager._sessions[name]
    for slot in managed.slots.values():
        next(iter(slot.state.pvpg.all_flows())).in_worklist = True


class TestManagerCheck:
    def test_lint_only_check(self, manager):
        manager.open("s", source=WARNING_SOURCE)
        result = manager.check("s")
        assert result["analysis"] is None
        assert result["counts"]["warning"] >= 1
        assert any(d["id"] == "IR002" for d in result["diagnostics"])

    def test_check_with_analysis_runs_the_audits(self, manager):
        manager.open("s", source=SOURCE)
        result = manager.check("s", analysis="skipflow")
        assert result["analysis"] == "skipflow"
        assert result["counts"]["error"] == 0

    def test_check_reports_corruption_without_raising(self, manager):
        manager.open("s", source=SOURCE)
        manager.analyze("s", "skipflow")
        _corrupt_slot(manager, "s")
        result = manager.check("s", analysis="skipflow")
        assert any(d["id"] == "AUD001" for d in result["diagnostics"])

    def test_metrics_count_checks_and_findings(self, manager):
        manager.open("s", source=WARNING_SOURCE)
        manager.check("s")
        metrics = manager.metrics_snapshot()
        assert metrics["requests"]["checks"] == 1
        assert metrics["requests"]["check_findings"] >= 1


class TestAuditOnAnalyze:
    def test_clean_solve_embeds_the_audit_block(self, manager):
        manager.open("s", source=SOURCE)
        response = manager.analyze("s", "skipflow", audit=True)
        assert response["audit"]["counts"]["error"] == 0

    def test_corrupted_slot_fails_the_gate(self, manager):
        manager.open("s", source=SOURCE)
        manager.analyze("s", "skipflow")
        _corrupt_slot(manager, "s")
        with pytest.raises(CheckFailedError, match="AUD001"):
            manager.analyze("s", "skipflow", audit=True)


class TestOverTheWire:
    def test_check_endpoint_and_audit_gate(self, tmp_path):
        manager = SessionManager(spill_dir=tmp_path / "spill")
        with serving(manager) as server:
            host, port = server.server_address
            client = ServiceClient.for_address(host, port)
            client.open("s", source=WARNING_SOURCE)

            lint = client.check("s")
            assert any(d["id"] == "IR002" for d in lint["diagnostics"])

            audited = client.check("s", analysis="skipflow",
                                   options={"scheduling": "lifo"})
            assert audited["counts"]["error"] == 0

            clean = client.analyze("s", "skipflow", audit=True)
            assert clean["audit"]["counts"]["error"] == 0

            _corrupt_slot(manager, "s")
            with pytest.raises(ServiceClientError) as excinfo:
                client.analyze("s", "skipflow", audit=True)
            assert excinfo.value.status == 500
            assert excinfo.value.error_type == "CheckFailedError"

            metrics = client.metrics()
            assert metrics["requests"]["checks"] == 2
            client.close("s")
