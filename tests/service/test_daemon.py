"""End-to-end daemon coverage: real HTTP over a loopback socket.

One threading server per test class scope, driven through the stdlib
:class:`~repro.service.client.ServiceClient` — the same path the CI smoke
and the load study use.  Covers the full open/update/analyze/close loop,
the error-taxonomy-to-HTTP-status mapping, and that daemon responses carry
the identical versioned report payload the CLI's ``--json`` prints.
"""

import json

import pytest

from repro.api.report import SCHEMA_VERSION, AnalysisReport
from repro.service import ServiceClient, ServiceClientError, serving

SOURCE_V1 = """
class Main {
    static void main() {
        Greeter greeter = new Greeter();
        greeter.greet();
    }
}
class Greeter {
    int greet() { return 1; }
}
"""

SOURCE_V2 = SOURCE_V1 + """
class QuietGreeter extends Greeter {
    int greet() { return 0; }
}
class Rollout {
    static void apply() {
        QuietGreeter greeter = new QuietGreeter();
        greeter.greet();
    }
}
"""

SOURCE_EDITED_BODY = SOURCE_V1.replace("return 1", "return 9")

BROKEN_SOURCE = "class Broken extends Missing { }"


@pytest.fixture
def client():
    with serving() as server:
        host, port = server.server_address
        yield ServiceClient.for_address(host, port)


class TestRoundTrip:
    def test_full_session_loop(self, client):
        assert client.health()["status"] == "ok"
        info = client.open("demo", source=SOURCE_V1)
        assert info["live"] and info["origin"] == "source"

        cold = client.analyze("demo", "skipflow")
        assert cold["mode"] == "cold"
        report = cold["report"]
        assert report["schema_version"] == SCHEMA_VERSION
        # The wire payload round-trips through the report serializer: what
        # the daemon serves is exactly what ``repro analyze --json`` emits.
        rebuilt = AnalysisReport.from_dict(report)
        assert rebuilt.to_dict() == report

        update = client.update("demo", source=SOURCE_V2)
        assert update["queued"] == 1
        warm = client.analyze("demo", "skipflow")
        assert warm["mode"] == "warm"
        assert warm["coalesced_updates"] == 1

        sessions = client.sessions()
        assert [entry["session"] for entry in sessions] == ["demo"]
        assert client.close("demo") == {"session": "demo", "closed": True}
        assert client.sessions() == []

    def test_benchmark_sessions_and_eviction_endpoint(self, client):
        client.open("bench", benchmark="wide-flat-64")
        cold = client.analyze("bench", "skipflow")
        assert client.evict("bench")["evicted"]
        client.update("bench", edit={"kind": "add-variant", "index": 0})
        warm = client.analyze("bench", "skipflow")
        assert warm["mode"] == "warm"
        assert 0 < warm["steps_paid"] < cold["steps_paid"]
        metrics = client.metrics()
        assert metrics["requests"]["rehydrations"] == 1
        assert metrics["analyze_modes"]["warm"] == 1

    def test_analyzer_options_travel_the_wire(self, client):
        client.open("demo", source=SOURCE_V1)
        result = client.analyze("demo", "skipflow",
                                options={"saturation_threshold": 4})
        assert result["mode"] == "cold"
        # A distinct options combination is a distinct slot: no false cache.
        assert client.analyze("demo", "skipflow")["mode"] == "cold"
        assert client.analyze(
            "demo", "skipflow",
            options={"saturation_threshold": 4})["mode"] == "cached"


class TestErrorStatuses:
    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.analyze("ghost", "skipflow")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "SessionNotFoundError"

    def test_unknown_analyzer_is_404(self, client):
        client.open("demo", source=SOURCE_V1)
        with pytest.raises(ServiceClientError) as excinfo:
            client.analyze("demo", "made-up")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "UnknownAnalyzerError"

    def test_duplicate_open_is_409(self, client):
        client.open("demo", source=SOURCE_V1)
        with pytest.raises(ServiceClientError) as excinfo:
            client.open("demo", source=SOURCE_V1)
        assert excinfo.value.status == 409
        assert excinfo.value.error_type == "SessionExistsError"

    def test_non_monotone_source_update_is_409_then_rebuilds(self, client):
        client.open("demo", source=SOURCE_V1)
        client.analyze("demo", "skipflow")
        with pytest.raises(ServiceClientError) as excinfo:
            client.update("demo", source=SOURCE_EDITED_BODY)
        assert excinfo.value.status == 409
        assert excinfo.value.error_type == "NonMonotoneDeltaError"
        rebuilt = client.update("demo", source=SOURCE_EDITED_BODY,
                                allow_rebuild=True)
        assert rebuilt["rebuilt"]
        assert client.analyze("demo", "skipflow")["mode"] == "cold"

    def test_compile_failure_is_422(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.open("demo", source=BROKEN_SOURCE)
        assert excinfo.value.status == 422

    def test_protocol_violations_are_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.open("demo")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "ServiceProtocolError"
        client.open("demo", source=SOURCE_V1)
        with pytest.raises(ServiceClientError) as excinfo:
            client.analyze("demo", "skipflow", options={"nope": 1})
        assert excinfo.value.status == 400

    def test_malformed_json_is_400(self, client):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/v1/open", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read().decode("utf-8"))
        assert envelope["ok"] is False
        assert envelope["error"]["type"] == "ServiceProtocolError"

    def test_unknown_endpoint_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("teleport", {"session": "demo"})
        assert excinfo.value.status == 400
