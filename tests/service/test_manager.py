"""SessionManager: lifecycle, coalescing, eviction, and concurrency.

The manager is the embeddable core of the service layer; these tests
drive it directly (no HTTP) and cover the four service-only behaviors:
per-session locking under concurrent clients, delta coalescing, LRU
eviction with transparent rehydration (preserving warm-resume step
counts *and* the fixpoint), and the structured metrics.
"""

import threading

import pytest

from repro.api.errors import (
    ServiceProtocolError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.ir.delta import NonMonotoneDeltaError
from repro.service import SessionManager

BENCHMARK = "wide-flat-64"

SOURCE_V1 = """
class Main {
    static void main() {
        Greeter greeter = new Greeter();
        greeter.greet();
    }
}
class Greeter {
    int greet() { return 1; }
}
"""

# A monotone extension of SOURCE_V1: one new subclass plus a driver.
SOURCE_V2 = SOURCE_V1 + """
class LoudGreeter extends Greeter {
    int greet() { return 2; }
}
class Patch {
    static void apply() {
        LoudGreeter greeter = new LoudGreeter();
        greeter.greet();
    }
}
"""

# Non-monotone relative to SOURCE_V1: Greeter.greet changes its body.
SOURCE_EDITED_BODY = SOURCE_V1.replace("return 1", "return 42")


@pytest.fixture
def manager(tmp_path):
    return SessionManager(max_live_sessions=4, spill_dir=tmp_path / "spill")


class TestLifecycle:
    def test_open_analyze_modes(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        cold = manager.analyze("s", "skipflow")
        assert cold["mode"] == "cold"
        assert cold["steps_paid"] > 0
        assert cold["report"]["schema_version"] == 1

        cached = manager.analyze("s", "skipflow")
        assert cached["mode"] == "cached"
        assert cached["steps_paid"] == 0
        assert cached["report"] == cold["report"]

    def test_updates_coalesce_into_one_warm_solve(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        cold = manager.analyze("s", "skipflow")
        manager.update("s", edit={"kind": "add-variant", "index": 0})
        manager.update("s", edit={"kind": "add-dispatch", "index": 1})
        warm = manager.analyze("s", "skipflow")
        assert warm["mode"] == "warm"
        assert warm["coalesced_updates"] == 2
        assert 0 < warm["steps_paid"] < cold["steps_paid"]
        assert warm["generation"] == 2

    def test_non_monotone_edit_falls_back_cold_with_reason(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        manager.analyze("s", "skipflow")
        manager.update("s", edit={"kind": "touch-existing", "index": 0})
        result = manager.analyze("s", "skipflow")
        assert result["mode"] == "cold-fallback"
        assert "non-monotone" in result["fallback_reasons"][0]

    def test_source_update_is_diffed_into_a_delta(self, manager):
        manager.open("s", source=SOURCE_V1)
        before = manager.analyze("s", "skipflow")
        update = manager.update("s", source=SOURCE_V2)
        assert update["queued"] == 1 and not update["rebuilt"]
        after = manager.analyze("s", "skipflow")
        assert after["mode"] == "warm"
        assert after["generation"] == 1
        # LoudGreeter.greet is not rooted, so reachability is unchanged --
        # but the hierarchy grew, which is exactly what the delta carries.
        assert (after["report"]["metrics"]["reachable_methods"]
                == before["report"]["metrics"]["reachable_methods"])

    def test_non_monotone_source_update_raises_unless_rebuild(self, manager):
        manager.open("s", source=SOURCE_V1)
        manager.analyze("s", "skipflow")
        with pytest.raises(NonMonotoneDeltaError):
            manager.update("s", source=SOURCE_EDITED_BODY)
        result = manager.update("s", source=SOURCE_EDITED_BODY,
                                allow_rebuild=True)
        assert result["rebuilt"]
        # The rebuild dropped every slot: the next analyze is cold.
        assert manager.analyze("s", "skipflow")["mode"] == "cold"

    def test_noop_source_update_queues_nothing(self, manager):
        manager.open("s", source=SOURCE_V1)
        update = manager.update("s", source=SOURCE_V1)
        assert update["noop"] and update["queued"] == 0

    def test_close_forgets_the_session(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        manager.close("s")
        with pytest.raises(SessionNotFoundError):
            manager.analyze("s", "skipflow")

    def test_call_graph_analyzers_are_served_and_cached(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        first = manager.analyze("s", "cha")
        assert first["mode"] == "cold" and first["steps_paid"] == 0
        assert manager.analyze("s", "cha")["mode"] == "cached"


class TestProtocolErrors:
    def test_unknown_session(self, manager):
        with pytest.raises(SessionNotFoundError):
            manager.update("ghost", edit={"kind": "add-variant", "index": 0})

    def test_duplicate_open_needs_replace(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        with pytest.raises(SessionExistsError):
            manager.open("s", benchmark=BENCHMARK)
        manager.open("s", benchmark=BENCHMARK, replace=True)

    def test_open_needs_exactly_one_program_source(self, manager):
        with pytest.raises(ServiceProtocolError):
            manager.open("s")
        with pytest.raises(ServiceProtocolError):
            manager.open("s", source=SOURCE_V1, benchmark=BENCHMARK)

    def test_unknown_benchmark(self, manager):
        with pytest.raises(ServiceProtocolError):
            manager.open("s", benchmark="no-such-spec")

    def test_edit_updates_need_a_benchmark_session(self, manager):
        manager.open("s", source=SOURCE_V1)
        with pytest.raises(ServiceProtocolError):
            manager.update("s", edit={"kind": "add-variant", "index": 0})

    def test_bad_edit_step_is_a_protocol_error(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        with pytest.raises(ServiceProtocolError):
            manager.update("s", edit={"kind": "no-such-kind", "index": 0})
        with pytest.raises(ServiceProtocolError):
            manager.update("s", edit={"kind": "add-variant", "surprise": 1})

    def test_wire_options_are_whitelisted(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        with pytest.raises(ServiceProtocolError):
            manager.analyze("s", "skipflow", options={"policy": "x"})
        result = manager.analyze("s", "skipflow",
                                 options={"saturation_threshold": 8})
        assert result["mode"] == "cold"


class TestEviction:
    def test_lru_eviction_kicks_in_over_the_limit(self, tmp_path):
        manager = SessionManager(max_live_sessions=1,
                                 spill_dir=tmp_path / "spill")
        manager.open("first", benchmark=BENCHMARK)
        manager.analyze("first", "skipflow")
        manager.open("second", source=SOURCE_V1)
        described = {info["session"]: info for info in manager.sessions()}
        assert not described["first"]["live"]
        assert described["second"]["live"]
        assert manager.metrics_snapshot()["requests"]["evictions"] == 1

    def test_rehydration_preserves_warm_resume_step_counts(self, tmp_path):
        """The eviction round trip must not cost any warm-resume steps.

        Two managers run the identical open / cold / edit / warm sequence;
        one is evicted to disk (and transparently rehydrated) between the
        edit and the warm analyze.  The warm step count and the served
        fixpoint must be identical.
        """
        plain = SessionManager(spill_dir=tmp_path / "plain")
        spilled = SessionManager(spill_dir=tmp_path / "spilled")
        for manager in (plain, spilled):
            manager.open("s", benchmark=BENCHMARK)
            manager.analyze("s", "skipflow")
            manager.update("s", edit={"kind": "add-variant", "index": 0})
        evicted = spilled.evict("s")
        assert evicted["evicted"]

        reference = plain.analyze("s", "skipflow")
        rehydrated = spilled.analyze("s", "skipflow")
        assert rehydrated["mode"] == "warm"
        assert rehydrated["steps_paid"] == reference["steps_paid"]
        assert (rehydrated["report"]["call_graph"]
                == reference["report"]["call_graph"])
        counters = spilled.metrics_snapshot()["requests"]
        assert counters["rehydrations"] == 1
        assert counters["rehydration_state_misses"] == 0

    def test_rehydrated_fixpoint_equals_a_cold_solve(self, tmp_path):
        """Evict + rehydrate + warm solve == cold solve of the same program."""
        spilled = SessionManager(spill_dir=tmp_path / "spilled")
        cold = SessionManager(spill_dir=tmp_path / "cold")
        for manager in (spilled, cold):
            manager.open("s", benchmark=BENCHMARK)
        spilled.analyze("s", "skipflow")
        spilled.update("s", edit={"kind": "add-dispatch", "index": 0})
        spilled.evict("s")
        warm = spilled.analyze("s", "skipflow")
        assert warm["mode"] == "warm"

        cold.update("s", edit={"kind": "add-dispatch", "index": 0})
        reference = cold.analyze("s", "skipflow")
        assert reference["mode"] == "cold"
        assert warm["report"]["call_graph"] == reference["report"]["call_graph"]

    def test_warm_barrier_survives_the_round_trip(self, tmp_path):
        manager = SessionManager(spill_dir=tmp_path / "spill")
        manager.open("s", benchmark=BENCHMARK)
        manager.analyze("s", "skipflow")
        manager.update("s", edit={"kind": "touch-existing", "index": 0})
        manager.analyze("s", "skipflow")  # moves past the barrier, cold
        manager.evict("s")
        info = manager.describe("s")
        assert info["warm_barrier"] == 1
        # After rehydration the post-barrier state resumes warm again.
        manager.update("s", edit={"kind": "add-variant", "index": 1})
        assert manager.analyze("s", "skipflow")["mode"] == "warm"


class TestConcurrency:
    def test_parallel_clients_on_distinct_sessions(self, manager):
        names = [f"s{i}" for i in range(4)]
        for name in names:
            manager.open(name, benchmark=BENCHMARK)
        results, errors = {}, []

        def run(name):
            try:
                results[name] = manager.analyze(name, "skipflow")
            except BaseException as error:  # noqa: BLE001 - asserted below
                errors.append(error)

        threads = [threading.Thread(target=run, args=(name,))
                   for name in names]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(results[name]["mode"] == "cold" for name in names)
        graphs = {frozenset(results[name]["report"]["call_graph"]
                            ["reachable_methods"]) for name in names}
        assert len(graphs) == 1  # identical program, identical fixpoint

    def test_interleaved_update_and_analyze_on_one_session(self, manager):
        """Updates and analyzes racing on one session stay consistent."""
        manager.open("s", benchmark=BENCHMARK)
        manager.analyze("s", "skipflow")
        rounds, errors, analyses = 6, [], []

        def editor():
            try:
                for index in range(rounds):
                    manager.update(
                        "s", edit={"kind": "add-variant", "index": index})
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        def analyst():
            try:
                for _ in range(rounds):
                    analyses.append(manager.analyze("s", "skipflow"))
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=editor),
                   threading.Thread(target=analyst)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every update lands exactly once: the final generation is the
        # number of updates, whatever interleaving the race produced.
        final = manager.analyze("s", "skipflow")
        assert final["generation"] == rounds
        assert all(result["mode"] in ("warm", "cached", "cold-fallback")
                   for result in analyses)
        # And the served fixpoint equals a cold solve of the final program.
        cold = SessionManager()
        cold.open("s", benchmark=BENCHMARK)
        for index in range(rounds):
            cold.update("s", edit={"kind": "add-variant", "index": index})
        reference = cold.analyze("s", "skipflow")
        assert (final["report"]["call_graph"]
                == reference["report"]["call_graph"])


class TestMetrics:
    def test_snapshot_counts_modes_and_latency(self, manager):
        manager.open("s", benchmark=BENCHMARK)
        manager.analyze("s", "skipflow")
        manager.update("s", edit={"kind": "add-variant", "index": 0})
        manager.analyze("s", "skipflow")
        manager.analyze("s", "skipflow")
        snapshot = manager.metrics_snapshot()
        assert snapshot["analyze_modes"] == {
            "cached": 1, "warm": 1, "cold": 1, "cold-fallback": 0}
        assert snapshot["warm_resume_ratio"] == 0.5
        assert snapshot["warm_steps_paid"] < snapshot["cold_steps_paid"]
        assert snapshot["analyze_latency_ms"]["count"] == 3
        assert snapshot["analyze_latency_ms"]["p95"] >= \
            snapshot["analyze_latency_ms"]["p50"] >= 0
        assert snapshot["sessions"] == {
            "live": 1, "evicted": 0, "max_live": 4}
