"""ServiceClient transport/envelope error paths (no daemon, or a lying one).

The daemon tests cover the happy path and the server-side error taxonomy;
these cover what the *client* does when the conversation itself breaks:
nobody listening (connection refused), a server that answers non-JSON or a
JSON shape that is not the ok/result envelope, and the full 409
``allow_rebuild`` round-trip including the offender-naming fallback
reasons of the analyze that follows.
"""

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import ServiceClient, ServiceClientError, serving


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture
def lying_server():
    """An HTTP server answering 200 with whatever body the test sets."""

    class Handler(BaseHTTPRequestHandler):
        body = b"not json {"

        def _answer(self):
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.end_headers()
            self.wfile.write(type(self).body)

        do_GET = do_POST = _answer

        def log_message(self, *args):
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, Handler
    finally:
        server.shutdown()
        thread.join()


class TestConnectionRefused:
    def test_no_daemon_is_a_typed_connection_error(self):
        client = ServiceClient.for_address("127.0.0.1", _free_port(),
                                           timeout=2.0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert excinfo.value.error_type == "ConnectionError"
        assert "cannot reach the analysis daemon" in excinfo.value.message

    def test_unresolvable_host_is_a_typed_connection_error(self):
        client = ServiceClient("http://nonexistent.invalid:1", timeout=2.0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert excinfo.value.error_type == "ConnectionError"


class TestMalformedEnvelope:
    def test_non_json_response(self, lying_server):
        server, handler = lying_server
        handler.body = b"<html>gateway error</html>"
        client = ServiceClient.for_address(*server.server_address)
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 502
        assert excinfo.value.error_type == "MalformedEnvelope"
        assert "not JSON" in excinfo.value.message

    def test_json_but_not_an_envelope(self, lying_server):
        server, handler = lying_server
        handler.body = json.dumps(["not", "an", "envelope"]).encode()
        client = ServiceClient.for_address(*server.server_address)
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 502
        assert excinfo.value.error_type == "MalformedEnvelope"

    def test_ok_envelope_without_result(self, lying_server):
        server, handler = lying_server
        handler.body = json.dumps({"ok": True}).encode()
        client = ServiceClient.for_address(*server.server_address)
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 502
        assert excinfo.value.error_type == "MalformedEnvelope"
        assert "no result" in excinfo.value.message

    def test_not_ok_envelope_without_error_detail(self, lying_server):
        server, handler = lying_server
        handler.body = json.dumps({"ok": False}).encode()
        client = ServiceClient.for_address(*server.server_address)
        with pytest.raises(ServiceClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 500
        assert excinfo.value.error_type == "unknown"


SOURCE_V1 = """
class Main {
    static void main() {
        Greeter greeter = new Greeter();
        greeter.greet();
    }
}
class Greeter {
    int greet() { return 1; }
}
"""

# Grafting a method onto the pre-existing Greeter is a non-monotone edit.
SOURCE_GRAFTED = SOURCE_V1.replace(
    "int greet() { return 1; }",
    "int greet() { return 1; }\n    int volume() { return 11; }")


class TestAllowRebuildRoundTrip:
    def test_409_then_rebuild_then_offender_named_in_fallback(self):
        with serving() as server:
            client = ServiceClient.for_address(*server.server_address)
            client.open("demo", source=SOURCE_V1)
            warm_base = client.analyze("demo", "skipflow")
            assert warm_base["mode"] == "cold"

            # First attempt: refused with the typed 409.
            with pytest.raises(ServiceClientError) as excinfo:
                client.update("demo", source=SOURCE_GRAFTED)
            assert excinfo.value.status == 409
            assert excinfo.value.error_type == "NonMonotoneDeltaError"
            assert "Greeter.volume" in excinfo.value.message

            # Retry exactly as the error contract suggests.
            rebuilt = client.update("demo", source=SOURCE_GRAFTED,
                                    allow_rebuild=True)
            assert rebuilt["rebuilt"]

            # The post-rebuild solve is cold, and its fallback reasons name
            # the offending method rather than only a generation number.
            after = client.analyze("demo", "skipflow")
            assert after["mode"] in ("cold", "cold-fallback")
            if after["fallback_reasons"]:
                assert any("Greeter.volume" in reason
                           for reason in after["fallback_reasons"])
            reachable = after["report"]["call_graph"]["reachable_methods"]
            assert "Greeter.greet" in reachable
