"""Tests for the method/program builders and the IR validator."""

import pytest

from repro.ir.builder import BuilderError, MethodBuilder, ProgramBuilder
from repro.ir.instructions import (
    Assign,
    CompareOp,
    Condition,
    If,
    InstanceOfCondition,
    Invoke,
    InvokeKind,
    Jump,
    Merge,
    Start,
)
from repro.ir.types import MethodSignature
from repro.ir.validate import ValidationError, validate_method, validate_program


def simple_builder(return_type="void", params=(), is_static=False):
    signature = MethodSignature("Widget", "work", tuple(params), return_type, is_static)
    return MethodBuilder(signature)


class TestMethodBuilder:
    def test_entry_block_has_start(self):
        mb = simple_builder()
        mb.return_void()
        method = mb.build()
        assert isinstance(method.entry_block.begin, Start)

    def test_receiver_is_first_parameter(self):
        mb = simple_builder()
        assert mb.receiver.name == "this"
        mb.return_void()
        assert mb.build().parameters[0].name == "this"

    def test_static_method_has_no_receiver(self):
        mb = simple_builder(is_static=True)
        with pytest.raises(BuilderError):
            _ = mb.receiver

    def test_param_indexing_skips_receiver(self):
        signature = MethodSignature("Widget", "work", ("int", "Widget"))
        mb = MethodBuilder(signature, param_names=["count", "other"])
        assert mb.param(0).name == "count"
        assert mb.param(1).name == "other"

    def test_assign_statements_recorded(self):
        mb = simple_builder()
        mb.assign_int(7)
        mb.assign_any()
        mb.assign_null()
        mb.assign_new("Widget")
        mb.return_void()
        method = mb.build()
        assigns = [s for s in method.iter_statements() if isinstance(s, Assign)]
        assert len(assigns) == 4

    def test_unterminated_block_rejected(self):
        mb = simple_builder()
        mb.assign_int(1)
        with pytest.raises(BuilderError):
            mb.build()

    def test_statement_after_terminator_rejected(self):
        mb = simple_builder()
        mb.return_void()
        with pytest.raises(BuilderError):
            mb.assign_int(1)

    def test_duplicate_block_name_rejected(self):
        mb = simple_builder()
        one = mb.assign_int(1)
        mb.if_eq(one, one, "a", "b")
        mb.label("a")
        with pytest.raises(BuilderError):
            mb.label("a")

    def test_if_compare_normalizes_ne(self):
        mb = simple_builder(params=("int",))
        x = mb.param(0)
        y = mb.assign_int(0)
        mb.if_compare(CompareOp.NE, x, y, "t", "e")
        block = mb.build_partial() if hasattr(mb, "build_partial") else None
        end = mb._blocks[0].end
        assert isinstance(end, If)
        assert isinstance(end.condition, Condition)
        assert end.condition.op is CompareOp.EQ
        # branches swapped
        assert end.then_label == "e"
        assert end.else_label == "t"

    def test_if_compare_normalizes_gt(self):
        mb = simple_builder(params=("int",))
        x = mb.param(0)
        y = mb.assign_int(5)
        mb.if_compare(CompareOp.GT, x, y, "t", "e")
        end = mb._blocks[0].end
        assert end.condition.op is CompareOp.LT
        assert end.condition.left is y
        assert end.condition.right is x

    def test_if_instanceof(self):
        mb = simple_builder()
        mb.if_instanceof(mb.receiver, "Widget", "t", "e")
        end = mb._blocks[0].end
        assert isinstance(end.condition, InstanceOfCondition)
        assert not end.condition.negated

    def test_merge_phi_operands_filled_from_jumps(self):
        mb = simple_builder(return_type="int")
        flag = mb.assign_int(1)
        mb.if_eq(flag, flag, "t", "e")
        mb.label("t")
        a = mb.assign_int(10)
        mb.jump("m", [a])
        mb.label("e")
        b = mb.assign_int(20)
        mb.jump("m", [b])
        result = mb.merge("m", ["joined"])[0]
        mb.return_(result)
        method = mb.build()
        merge = method.block_by_name("m").begin
        assert isinstance(merge, Merge)
        assert len(merge.phis) == 1
        assert {operand.name for operand in merge.phis[0].operands} == {a.name, b.name}

    def test_invoke_kinds(self):
        mb = simple_builder()
        other = mb.assign_new("Widget")
        mb.invoke_virtual(other, "work")
        mb.invoke_special(other, "init")
        mb.invoke_static("Widget", "create")
        mb.return_void()
        invokes = list(mb.build().iter_invokes())
        assert [invoke.kind for invoke in invokes] == [
            InvokeKind.VIRTUAL, InvokeKind.SPECIAL, InvokeKind.STATIC]

    def test_instruction_count(self):
        mb = simple_builder()
        mb.assign_int(1)
        mb.assign_int(2)
        mb.return_void()
        assert mb.build().instruction_count == 3


class TestInvokeConstruction:
    def test_static_invoke_requires_target_class(self):
        with pytest.raises(ValueError):
            Invoke(None, "m", kind=InvokeKind.STATIC)

    def test_virtual_invoke_requires_receiver(self):
        with pytest.raises(ValueError):
            Invoke(None, "m", kind=InvokeKind.VIRTUAL)

    def test_all_arguments_include_receiver(self):
        mb = simple_builder()
        receiver = mb.assign_new("Widget")
        arg = mb.assign_int(3)
        mb.invoke_virtual(receiver, "work", [arg])
        mb.return_void()
        invoke = next(mb.build().iter_invokes())
        assert [v.name for v in invoke.all_arguments] == [receiver.name, arg.name]


class TestProgramBuilder:
    def test_finish_method_registers_signature(self):
        pb = ProgramBuilder()
        pb.declare_class("Widget")
        mb = pb.method("Widget", "work")
        mb.return_void()
        pb.finish_method(mb)
        program = pb.build()
        assert program.has_method("Widget.work")
        assert "work" in program.hierarchy.get("Widget").declared_methods

    def test_entry_point_must_exist(self):
        pb = ProgramBuilder()
        pb.declare_class("Widget")
        with pytest.raises(Exception):
            pb.add_entry_point("Widget.missing")

    def test_duplicate_method_rejected(self):
        pb = ProgramBuilder()
        pb.declare_class("Widget")
        for _ in range(1):
            mb = pb.method("Widget", "work")
            mb.return_void()
            pb.finish_method(mb)
        mb = pb.method("Widget", "work")
        mb.return_void()
        with pytest.raises(Exception):
            pb.finish_method(mb)


class TestValidator:
    def _valid_method(self):
        mb = simple_builder(return_type="int")
        flag = mb.assign_int(1)
        mb.if_eq(flag, flag, "t", "e")
        mb.label("t")
        a = mb.assign_int(10)
        mb.jump("m", [a])
        mb.label("e")
        b = mb.assign_int(20)
        mb.jump("m", [b])
        result = mb.merge("m", ["joined"])[0]
        mb.return_(result)
        return mb.build()

    def test_valid_method_passes(self):
        validate_method(self._valid_method())

    def test_missing_terminator_detected(self):
        method = self._valid_method()
        method.block_by_name("t").end = None
        with pytest.raises(ValidationError):
            validate_method(method)

    def test_duplicate_definition_detected(self):
        method = self._valid_method()
        entry = method.entry_block
        first_assign = entry.statements[0]
        entry.statements.append(Assign(first_assign.result, first_assign.expr))
        with pytest.raises(ValidationError):
            validate_method(method)

    def test_use_of_undefined_value_detected(self):
        from repro.ir.values import Value
        method = self._valid_method()
        method.block_by_name("t").end = Jump("m", (Value("ghost"),))
        with pytest.raises(ValidationError):
            validate_method(method)

    def test_jump_to_label_block_rejected(self):
        method = self._valid_method()
        method.entry_block.end = Jump("t", ())
        with pytest.raises(ValidationError):
            validate_method(method)

    def test_phi_argument_count_checked(self):
        method = self._valid_method()
        method.block_by_name("t").end = Jump("m", ())
        with pytest.raises(ValidationError):
            validate_method(method)

    def test_if_target_must_be_label(self):
        mb = simple_builder()
        one = mb.assign_int(1)
        mb.if_eq(one, one, "m", "m2")
        mb.merge("m", [])
        mb.return_void()
        mb.merge("m2", [])
        mb.return_void()
        with pytest.raises(ValidationError):
            validate_method(mb.build())

    def test_unknown_class_in_new_detected_with_hierarchy(self):
        pb = ProgramBuilder()
        pb.declare_class("Known")
        mb = pb.method("Known", "make")
        mb.assign_new("Unknown")
        mb.return_void()
        pb.finish_method(mb)
        with pytest.raises(ValidationError):
            validate_program(pb.build())

    def test_validate_program_checks_entry_points(self, virtual_threads_program):
        validate_program(virtual_threads_program)
        virtual_threads_program.entry_points.append("No.such")
        with pytest.raises(ValidationError):
            validate_program(virtual_threads_program)
