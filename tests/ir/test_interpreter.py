"""Tests for the concrete interpreter of the base language."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.interpreter import Interpreter, InterpreterError, execute
from repro.lang import compile_source
from tests.conftest import build_virtual_threads_program


class TestBasicExecution:
    def test_motivating_example_skips_remove(self):
        trace = execute(build_virtual_threads_program(use_virtual_threads=False))
        assert "SharedThreadContainer.onExit" in trace.executed_methods
        assert "Thread.isVirtual" in trace.executed_methods
        assert "ThreadSet.remove" not in trace.executed_methods
        assert trace.completed

    def test_motivating_example_with_virtual_thread_calls_remove(self):
        trace = execute(build_virtual_threads_program(use_virtual_threads=True))
        assert "ThreadSet.remove" in trace.executed_methods
        assert ("SharedThreadContainer.onExit", "ThreadSet.remove") in trace.call_edges

    def test_allocated_types_recorded(self):
        trace = execute(build_virtual_threads_program())
        assert "SharedThreadContainer" in trace.allocated_types
        assert "VirtualThread" not in trace.allocated_types

    def test_field_round_trip(self):
        program = compile_source("""
            class Box { int value; }
            class Main {
                static int main() {
                    Box box = new Box();
                    box.value = 41;
                    return box.value;
                }
            }
        """, entry_points=["Main.main"])
        interpreter = Interpreter(program)
        trace = interpreter.run("Main.main")
        main_values = [value for (method, _), values in trace.observed_values.items()
                       if method == "Main.main" for value in values]
        assert 41 in main_values

    def test_loop_executes_bounded_number_of_iterations(self):
        program = compile_source("""
            class Main {
                static int main() {
                    int i = 0;
                    while (i < 3) { i = i + 7; }
                    return i;
                }
            }
        """, entry_points=["Main.main"])
        trace = execute(program)
        assert trace.completed
        assert trace.steps > 5

    def test_infinite_loop_hits_budget(self):
        program = compile_source("""
            class Main {
                static void main() {
                    int i = 0;
                    while (i < 10) { i = 0; }
                }
            }
        """, entry_points=["Main.main"])
        trace = execute(program, max_steps=500)
        assert not trace.completed

    def test_virtual_dispatch_uses_dynamic_type(self):
        program = compile_source("""
            class Animal { int speak() { return 0; } }
            class Dog extends Animal { int speak() { return 1; } }
            class Main {
                static void main() {
                    Animal a = new Dog();
                    a.speak();
                }
            }
        """, entry_points=["Main.main"])
        trace = execute(program)
        assert "Dog.speak" in trace.executed_methods
        assert "Animal.speak" not in trace.executed_methods


class TestRuntimeErrors:
    def test_null_receiver_raises(self):
        program = compile_source("""
            class Service { void go() { } }
            class Main {
                static void main() {
                    Service s = null;
                    s.go();
                }
            }
        """, entry_points=["Main.main"])
        with pytest.raises(InterpreterError):
            execute(program)

    def test_missing_entry_point(self):
        pb = ProgramBuilder()
        pb.declare_class("Main")
        mb = pb.method("Main", "main", is_static=True)
        mb.return_void()
        pb.finish_method(mb)
        with pytest.raises(InterpreterError):
            Interpreter(pb.build()).run()

    def test_explicit_arguments(self):
        program = compile_source("""
            class Main {
                static int identity(int x) { return x; }
            }
        """, entry_points=["Main.identity"])
        trace = Interpreter(program).run("Main.identity", arguments=[13])
        assert ("Main.identity", "x") in trace.observed_values
        assert trace.observed_values[("Main.identity", "x")] == [13]
