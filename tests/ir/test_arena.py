"""Arena round-trip: freeze → encode → attach → thaw equals the source.

The contract under test is :mod:`repro.ir.arena`'s whole reason to exist:
the flat buffer is a *lossless* re-encoding of a built program.  Losslessness
is checked three ways — the stamped :class:`~repro.ir.delta.
ProgramFingerprint` (shapes + body digests), the printed method bodies, and
analysis results over the attached/thawed programs (see
``tests/core/test_arena_kernel.py`` for the kernel side).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.arena import (
    ARENA_VERSION,
    ArenaFormatError,
    ArenaProgram,
    freeze,
    open_program,
    thaw,
)
from repro.ir.delta import ProgramFingerprint
from repro.ir.printer import format_method
from repro.lang.api import compile_source
from repro.workloads.generator import generate_benchmark, spec_from_reduction
from repro.workloads.suites import extended_suites

_SOURCE = """
class Main {
  static void main() {
    Shape s = new Circle();
    s.area();
    if (s instanceof Circle) { s.name(); }
  }
}
class Shape {
  int area() { return 0; }
  int name() { return 1; }
}
class Circle extends Shape {
  int area() { return 3; }
  int name() { return 4; }
}
"""


def _spec(total=90, reduction=10.0, name=None):
    return spec_from_reduction(
        name=name or f"arena-rt-{total}-{int(reduction)}",
        suite="test", total_methods=total, reduction_percent=reduction)


def _assert_programs_equal(original, thawed):
    """Structural equality, strongest form first: the fingerprint."""
    assert (ProgramFingerprint.of(thawed)
            == ProgramFingerprint.of(original))
    assert sorted(thawed.methods) == sorted(original.methods)
    assert thawed.entry_points == original.entry_points
    for name, method in original.methods.items():
        assert format_method(thawed.methods[name]) == format_method(method)


class TestRoundTrip:
    @settings(max_examples=8, deadline=None)
    @given(total=st.integers(min_value=30, max_value=140),
           reduction=st.sampled_from([0.0, 10.0, 35.0]))
    def test_freeze_thaw_is_lossless(self, total, reduction):
        original = generate_benchmark(_spec(total, reduction))
        _assert_programs_equal(original, thaw(freeze(original)))

    def test_compiled_source_round_trips(self):
        original = compile_source(_SOURCE, validate=True)
        _assert_programs_equal(original, thaw(freeze(original)))

    @pytest.mark.parametrize(
        "spec",
        [specs[0] for specs in extended_suites().values()],
        ids=lambda spec: spec.name)
    def test_suite_programs_round_trip(self, spec):
        original = generate_benchmark(spec)
        _assert_programs_equal(original, thaw(freeze(original)))

    def test_id_tables_are_deterministic(self):
        """Two builds of one spec freeze to identical integer tables.

        The pickled per-method body blobs may differ byte-wise between
        builds (pickle is not canonical over equal object graphs), so the
        determinism contract covers the id tables the kernel solves on.
        """
        first = open_program(freeze(generate_benchmark(_spec()))).arena
        second = open_program(freeze(generate_benchmark(_spec()))).arena
        names = first.reader.section_names()
        assert names == second.reader.section_names()
        for name in names:
            try:
                a, b = first.reader.ints(name), second.reader.ints(name)
            except ArenaFormatError:
                continue  # a byte-blob section (bodies, strings, fingerprint)
            assert a.tolist() == b.tolist(), f"section {name!r} diverged"


class TestAttachedFacade:
    def test_attach_exposes_the_program_interface(self):
        original = generate_benchmark(_spec())
        attached = open_program(freeze(original))
        assert isinstance(attached, ArenaProgram)
        assert sorted(attached.methods) == sorted(original.methods)
        assert attached.entry_points == original.entry_points
        for name in original.methods:
            assert attached.has_method(name)
            assert (format_method(attached.methods[name])
                    == format_method(original.methods[name]))

    def test_fingerprint_is_stamped_not_recomputed(self):
        original = generate_benchmark(_spec())
        attached = open_program(freeze(original))
        assert attached.program_fingerprint == ProgramFingerprint.of(original)
        # ProgramFingerprint.of takes the stamped fast path on arenas.
        assert ProgramFingerprint.of(attached) is attached.program_fingerprint

    def test_thaw_accepts_an_attached_arena(self):
        original = generate_benchmark(_spec())
        attached = open_program(freeze(original))
        _assert_programs_equal(original, thaw(attached.arena))

    def test_hierarchy_round_trips(self):
        original = generate_benchmark(_spec())
        attached = open_program(freeze(original))
        by_name = {cls.name: cls for cls in original.hierarchy}
        for cls in attached.hierarchy:
            source = by_name.pop(cls.name)
            assert cls.superclass == source.superclass
            assert tuple(cls.interfaces) == tuple(source.interfaces)
            assert cls.is_interface == source.is_interface
            assert cls.is_abstract == source.is_abstract
        assert not by_name


class TestFormatSafety:
    def test_bad_magic_is_rejected(self):
        blob = bytearray(freeze(generate_benchmark(_spec(total=40))))
        blob[:4] = b"NOPE"
        with pytest.raises(ArenaFormatError):
            open_program(bytes(blob))

    def test_foreign_version_is_rejected(self):
        blob = bytearray(freeze(generate_benchmark(_spec(total=40))))
        blob[4] = (ARENA_VERSION + 1) & 0xFF
        with pytest.raises(ArenaFormatError):
            open_program(bytes(blob))

    def test_short_buffer_is_rejected(self):
        with pytest.raises(ArenaFormatError):
            open_program(b"RPRA")

    @settings(max_examples=12, deadline=None)
    @given(cut=st.floats(min_value=0.01, max_value=0.99))
    def test_truncation_never_crashes_unstructured(self, cut):
        """Truncated buffers raise a typed error, never segfault/garbage."""
        blob = freeze(generate_benchmark(_spec(total=40)))
        truncated = blob[:max(1, int(len(blob) * cut))]
        with pytest.raises((ArenaFormatError, pickle.UnpicklingError,
                            ValueError, EOFError, IndexError, KeyError)):
            program = open_program(truncated)
            # Attach may succeed if the index survived; force full decode.
            thaw(program.arena)
