"""Tests for the control-flow graph utilities and the textual printer."""

import pytest

from repro.ir.builder import MethodBuilder
from repro.ir.cfg import ControlFlowGraph
from repro.ir.printer import format_method, format_program
from repro.ir.types import MethodSignature
from tests.conftest import build_virtual_threads_program


def diamond_method():
    mb = MethodBuilder(MethodSignature("C", "diamond", ("int",), "int"))
    x = mb.param(0)
    ten = mb.assign_int(10)
    mb.if_lt(x, ten, "small", "big")
    mb.label("small")
    a = mb.assign_int(1)
    mb.jump("join", [a])
    mb.label("big")
    b = mb.assign_int(2)
    mb.jump("join", [b])
    result = mb.merge("join", ["r"])[0]
    mb.return_(result)
    return mb.build()


def loop_method():
    mb = MethodBuilder(MethodSignature("C", "loop", ("int",), "void"))
    x = mb.param(0)
    mb.jump("head", [x])
    current = mb.merge("head", ["i"])[0]
    limit = mb.assign_int(10)
    mb.if_lt(current, limit, "body", "exit")
    mb.label("body")
    step = mb.assign_any()
    mb.jump("head", [step])
    mb.label("exit")
    mb.return_void()
    return mb.build()


class TestControlFlowGraph:
    def test_diamond_successors(self):
        cfg = ControlFlowGraph(diamond_method())
        assert set(cfg.successors["entry"]) == {"small", "big"}
        assert cfg.successors["small"] == ["join"]
        assert cfg.successors["join"] == []

    def test_diamond_predecessors(self):
        cfg = ControlFlowGraph(diamond_method())
        assert set(cfg.predecessors["join"]) == {"small", "big"}
        assert cfg.predecessors["entry"] == []

    def test_reverse_postorder_starts_at_entry(self):
        cfg = ControlFlowGraph(diamond_method())
        rpo = cfg.reverse_postorder
        assert rpo[0] == "entry"
        assert rpo.index("join") > rpo.index("small")
        assert rpo.index("join") > rpo.index("big")

    def test_diamond_has_no_loops(self):
        cfg = ControlFlowGraph(diamond_method())
        assert not cfg.has_loops
        assert cfg.back_edges == set()

    def test_loop_back_edge_detected(self):
        cfg = ControlFlowGraph(loop_method())
        assert cfg.has_loops
        assert ("body", "head") in cfg.back_edges
        assert cfg.is_back_edge("body", "head")

    def test_loop_rpo_places_header_before_body(self):
        cfg = ControlFlowGraph(loop_method())
        rpo = cfg.reverse_postorder
        assert rpo.index("head") < rpo.index("body")

    def test_unreachable_blocks_reported(self):
        method = diamond_method()
        # Add an orphan merge block not targeted by anything.
        from repro.ir.blocks import BasicBlock
        from repro.ir.instructions import Merge, Return
        orphan = BasicBlock("orphan", Merge("orphan", ()), [], Return(None))
        method.blocks.append(orphan)
        cfg = ControlFlowGraph(method)
        assert cfg.unreachable_blocks() == ["orphan"]

    def test_jump_to_missing_block_raises(self):
        method = diamond_method()
        from repro.ir.instructions import Jump
        method.block_by_name("small").end = Jump("nowhere", ())
        with pytest.raises(KeyError):
            ControlFlowGraph(method)


class TestPrinter:
    def test_format_method_contains_blocks_and_statements(self):
        text = format_method(diamond_method())
        assert "C.diamond" in text
        assert "start(" in text
        assert "merge [" in text
        assert "label small" in text
        assert "return" in text

    def test_format_program_lists_classes_and_methods(self):
        program = build_virtual_threads_program()
        text = format_program(program)
        assert "class Thread" in text
        assert "class VirtualThread extends BaseVirtualThread" in text
        assert "ThreadSet virtualThreads;" in text
        assert "SharedThreadContainer.onExit" in text

    def test_format_program_mentions_summary(self):
        program = build_virtual_threads_program()
        assert program.summary() in format_program(program)
