"""ProgramDelta edit scripts, fingerprints, and the monotone-delta guard."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.delta import (
    DeltaError,
    NonMonotoneDeltaError,
    ProgramDelta,
    ProgramFingerprint,
    diff_fingerprints,
    diff_programs,
)
from repro.lang import compile_source

BASE_SOURCE = """
class Base { int run() { return 1; } }
class Impl extends Base { int run() { return 2; } }
class Main {
    static void main() {
        Base b = new Impl();
        b.run();
    }
}
"""


def base_program():
    return compile_source(BASE_SOURCE)


def variant_delta(name="grow"):
    delta = ProgramDelta(name)
    delta.declare_class("Impl2", superclass="Base")
    mb = delta.method("Impl2", "run", return_type="int")
    value = mb.assign_int(3)
    mb.return_(value)
    delta.finish_method(mb)
    delta.declare_class("Grower")
    mb = delta.method("Grower", "go", is_static=True)
    obj = mb.assign_new("Impl2")
    mb.invoke_virtual(obj, "run", result_type="int")
    mb.return_void()
    delta.finish_method(mb)
    delta.add_entry_point("Grower.go")
    return delta


class TestProgramDelta:
    def test_builder_surface_records_without_applying(self):
        program = base_program()
        delta = variant_delta()
        assert delta.class_names == ("Impl2", "Grower")
        assert delta.method_names == ("Impl2.run", "Grower.go")
        assert delta.entry_points == ("Grower.go",)
        assert not delta.is_empty
        # Nothing landed yet.
        assert "Impl2" not in program.hierarchy
        assert "Grower.go" not in program.methods

    def test_apply_to_lands_everything(self):
        program = base_program()
        applied = variant_delta().apply_to(program)
        assert applied.monotone
        assert "Impl2" in program.hierarchy
        assert program.hierarchy.is_subtype("Impl2", "Base")
        assert "Grower.go" in program.methods
        assert "Grower.go" in program.entry_points
        # The new override resolves for the new receiver type.
        sig = program.hierarchy.resolve("Impl2", "run")
        assert sig is not None and sig.qualified_name == "Impl2.run"

    def test_fields_on_new_classes_are_monotone(self):
        program = base_program()
        delta = ProgramDelta()
        delta.declare_class("Holder")
        delta.declare_field("Holder", "cached", "Base")
        assert delta.is_monotone_for(program)
        applied = delta.apply_to(program, require_monotone=True)
        assert applied.added_fields == ("Holder.cached",)
        assert "cached" in program.hierarchy.get("Holder").fields

    def test_method_on_existing_class_is_non_monotone(self):
        program = base_program()
        delta = ProgramDelta()
        mb = delta.method("Main", "helper", is_static=True)
        mb.return_void()
        delta.finish_method(mb)
        reasons = delta.non_monotone_reasons(program)
        assert reasons and "Main.helper" in reasons[0]
        with pytest.raises(NonMonotoneDeltaError, match="Main.helper"):
            delta.apply_to(program, require_monotone=True)
        # But it is still appliable without the guard.
        applied = delta.apply_to(program)
        assert not applied.monotone
        assert "Main.helper" in program.methods

    def test_field_on_existing_class_is_non_monotone(self):
        program = base_program()
        delta = ProgramDelta()
        delta.declare_field("Impl", "shadow", "Base")
        assert not delta.is_monotone_for(program)
        with pytest.raises(NonMonotoneDeltaError, match="shadow"):
            delta.apply_to(program, require_monotone=True)

    def test_structural_errors_always_raise(self):
        program = base_program()
        redeclare = ProgramDelta()
        redeclare.declare_class("Impl")
        with pytest.raises(DeltaError, match="redeclares"):
            redeclare.apply_to(program)

        unknown_super = ProgramDelta()
        unknown_super.declare_class("Orphan", superclass="Missing")
        with pytest.raises(DeltaError, match="unknown class"):
            unknown_super.apply_to(program)

        bad_entry = ProgramDelta()
        bad_entry.add_entry_point("Nobody.nowhere")
        with pytest.raises(DeltaError, match="entry point"):
            bad_entry.apply_to(program)

        redefine = ProgramDelta()
        mb = redefine.method("Main", "main", is_static=True)
        mb.return_void()
        redefine.finish_method(mb)
        with pytest.raises(DeltaError, match="redefines"):
            redefine.apply_to(program)

    def test_duplicates_within_a_delta_rejected(self):
        delta = ProgramDelta()
        delta.declare_class("Once")
        with pytest.raises(DeltaError, match="twice"):
            delta.declare_class("Once")

    def test_add_call_site_builds_a_rooted_bridge(self):
        program = base_program()
        delta = ProgramDelta()
        bridge = delta.add_call_site("Main", "main")
        assert bridge == "MainCall0.invoke"
        assert delta.is_monotone_for(program)
        delta.apply_to(program, require_monotone=True)
        assert bridge in program.methods
        assert bridge in program.entry_points

    def test_entry_point_to_existing_method_is_monotone(self):
        program = base_program()
        delta = ProgramDelta()
        delta.add_entry_point("Impl.run")
        assert delta.is_monotone_for(program)
        delta.apply_to(program, require_monotone=True)
        assert "Impl.run" in program.entry_points


class TestFingerprints:
    def test_identical_programs_diff_empty_and_monotone(self):
        delta = diff_programs(base_program(), base_program())
        assert delta.is_monotone
        assert delta.is_empty

    def test_additive_edit_is_monotone(self):
        old = base_program()
        new = base_program()
        variant_delta().apply_to(new)
        delta = diff_programs(old, new)
        assert delta.is_monotone
        assert delta.added_classes == ("Grower", "Impl2")
        assert delta.added_methods == ("Grower.go", "Impl2.run")
        assert delta.added_entry_points == ("Grower.go",)

    def test_body_change_is_a_violation(self):
        changed = BASE_SOURCE.replace("return 2", "return 7")
        delta = diff_programs(base_program(), compile_source(changed))
        assert not delta.is_monotone
        assert any("Impl.run" in violation and "body" in violation
                   for violation in delta.violations)

    def test_removal_is_a_violation(self):
        shrunk = compile_source("""
class Base { int run() { return 1; } }
class Main { static void main() { Base b = new Base(); b.run(); } }
""")
        delta = diff_programs(base_program(), shrunk)
        assert not delta.is_monotone
        assert any("removed" in violation for violation in delta.violations)

    def test_method_added_to_existing_class_is_a_violation(self):
        new = base_program()
        add = ProgramDelta()
        mb = add.method("Impl", "extra", is_static=True)
        mb.return_void()
        add.finish_method(mb)
        add.apply_to(new)  # appliable, just not monotone
        delta = diff_programs(base_program(), new)
        assert not delta.is_monotone
        assert any("pre-existing class Impl" in violation
                   for violation in delta.violations)

    def test_new_field_on_existing_class_is_a_violation(self):
        new = base_program()
        new.hierarchy.get("Impl").declare_field("shadow", "Base")
        delta = diff_programs(base_program(), new)
        assert not delta.is_monotone
        assert any("fields" in violation for violation in delta.violations)

    def test_fingerprint_is_deterministic_and_picklable(self):
        import pickle

        first = ProgramFingerprint.of(base_program())
        second = ProgramFingerprint.of(base_program())
        assert first == second
        assert pickle.loads(pickle.dumps(first)) == first

    def test_fields_of_new_classes_are_reported(self):
        pb = ProgramBuilder()
        pb.declare_class("Holder")
        pb.declare_field("Holder", "cached", "Object")
        delta = diff_fingerprints(ProgramFingerprint.of(base_program()),
                                  ProgramFingerprint.of(pb.build()))
        # Holder is new, Base/Impl/Main were removed: not monotone, but the
        # added field is still reported.
        assert "Holder.cached" in delta.added_fields
        assert not delta.is_monotone
