"""Tests for the type hierarchy: subtyping, LookUp, and Resolve."""

import pytest

from repro.ir.types import (
    NULL_TYPE_NAME,
    MethodSignature,
    TypeHierarchy,
    TypeSystemError,
)


@pytest.fixture
def hierarchy():
    h = TypeHierarchy()
    h.declare_class("Animal")
    h.declare_class("Dog", superclass="Animal")
    h.declare_class("Puppy", superclass="Dog")
    h.declare_class("Cat", superclass="Animal")
    h.declare_class("Walkable", is_interface=True)
    h.declare_class("Robot", interfaces=("Walkable",))
    h.declare_class("AbstractShape", is_abstract=True)
    h.declare_class("Circle", superclass="AbstractShape")
    return h


class TestDeclarations:
    def test_object_is_predeclared(self, hierarchy):
        assert "Object" in hierarchy

    def test_duplicate_class_rejected(self, hierarchy):
        with pytest.raises(TypeSystemError):
            hierarchy.declare_class("Dog")

    def test_null_cannot_be_declared(self, hierarchy):
        with pytest.raises(TypeSystemError):
            hierarchy.declare_class(NULL_TYPE_NAME)

    def test_unknown_class_lookup_raises(self, hierarchy):
        with pytest.raises(TypeSystemError):
            hierarchy.get("Nonexistent")

    def test_class_names_listed(self, hierarchy):
        assert "Dog" in hierarchy.class_names
        assert "Object" in hierarchy.class_names


class TestSubtyping:
    def test_reflexive(self, hierarchy):
        assert hierarchy.is_subtype("Dog", "Dog")

    def test_direct_superclass(self, hierarchy):
        assert hierarchy.is_subtype("Dog", "Animal")

    def test_transitive(self, hierarchy):
        assert hierarchy.is_subtype("Puppy", "Animal")

    def test_not_symmetric(self, hierarchy):
        assert not hierarchy.is_subtype("Animal", "Dog")

    def test_siblings_unrelated(self, hierarchy):
        assert not hierarchy.is_subtype("Cat", "Dog")

    def test_everything_subtype_of_object(self, hierarchy):
        for name in ("Animal", "Puppy", "Robot", "Walkable"):
            assert hierarchy.is_subtype(name, "Object")

    def test_interface_implementation(self, hierarchy):
        assert hierarchy.is_subtype("Robot", "Walkable")

    def test_null_is_subtype_of_everything(self, hierarchy):
        assert hierarchy.is_subtype(NULL_TYPE_NAME, "Dog")
        assert hierarchy.is_subtype(NULL_TYPE_NAME, "Object")

    def test_nothing_is_subtype_of_null(self, hierarchy):
        assert not hierarchy.is_subtype("Dog", NULL_TYPE_NAME)

    def test_supertypes_include_self_and_object(self, hierarchy):
        supertypes = hierarchy.supertypes("Puppy")
        assert {"Puppy", "Dog", "Animal", "Object"} <= set(supertypes)

    def test_all_subtypes(self, hierarchy):
        assert set(hierarchy.all_subtypes("Animal")) == {"Animal", "Dog", "Puppy", "Cat"}

    def test_direct_subclasses(self, hierarchy):
        assert set(hierarchy.direct_subclasses("Animal")) == {"Dog", "Cat"}

    def test_instantiable_excludes_abstract_and_interfaces(self, hierarchy):
        assert "AbstractShape" not in hierarchy.instantiable_subtypes("AbstractShape")
        assert "Circle" in hierarchy.instantiable_subtypes("AbstractShape")
        assert "Walkable" not in hierarchy.instantiable_subtypes("Walkable")
        assert "Robot" in hierarchy.instantiable_subtypes("Walkable")


class TestFieldLookup:
    def test_field_on_declaring_class(self, hierarchy):
        hierarchy.get("Animal").declare_field("name", "Object")
        decl = hierarchy.lookup_field("Animal", "name")
        assert decl is not None
        assert decl.declaring_class == "Animal"

    def test_field_inherited(self, hierarchy):
        hierarchy.get("Animal").declare_field("name", "Object")
        decl = hierarchy.lookup_field("Puppy", "name")
        assert decl is not None
        assert decl.declaring_class == "Animal"

    def test_field_shadowing_prefers_subclass(self, hierarchy):
        hierarchy.get("Animal").declare_field("tag", "Object")
        hierarchy.get("Dog").declare_field("tag", "Object")
        assert hierarchy.lookup_field("Puppy", "tag").declaring_class == "Dog"

    def test_missing_field_returns_none(self, hierarchy):
        assert hierarchy.lookup_field("Dog", "missing") is None

    def test_null_receiver_returns_none(self, hierarchy):
        assert hierarchy.lookup_field(NULL_TYPE_NAME, "anything") is None

    def test_qualified_name(self, hierarchy):
        decl = hierarchy.get("Dog").declare_field("owner", "Object")
        assert decl.qualified_name == "Dog.owner"

    def test_primitive_field(self, hierarchy):
        decl = hierarchy.get("Dog").declare_field("age", "int")
        assert decl.is_primitive


class TestResolve:
    def _declare(self, hierarchy, class_name, method_name):
        signature = MethodSignature(class_name, method_name)
        hierarchy.get(class_name).declare_method(signature)
        return signature

    def test_resolve_on_declaring_class(self, hierarchy):
        self._declare(hierarchy, "Dog", "bark")
        assert hierarchy.resolve("Dog", "bark").qualified_name == "Dog.bark"

    def test_resolve_walks_superclasses(self, hierarchy):
        self._declare(hierarchy, "Animal", "eat")
        assert hierarchy.resolve("Puppy", "eat").qualified_name == "Animal.eat"

    def test_resolve_prefers_override(self, hierarchy):
        self._declare(hierarchy, "Animal", "speak")
        self._declare(hierarchy, "Dog", "speak")
        assert hierarchy.resolve("Puppy", "speak").qualified_name == "Dog.speak"

    def test_resolve_missing_returns_none(self, hierarchy):
        assert hierarchy.resolve("Dog", "fly") is None

    def test_resolve_on_null_returns_none(self, hierarchy):
        self._declare(hierarchy, "Dog", "bark")
        assert hierarchy.resolve(NULL_TYPE_NAME, "bark") is None

    def test_resolve_interface_default(self, hierarchy):
        self._declare(hierarchy, "Walkable", "walk")
        assert hierarchy.resolve("Robot", "walk").qualified_name == "Walkable.walk"

    def test_resolve_all_deduplicates(self, hierarchy):
        self._declare(hierarchy, "Animal", "eat")
        targets = hierarchy.resolve_all(["Dog", "Cat", "Puppy"], "eat")
        assert [t.qualified_name for t in targets] == ["Animal.eat"]

    def test_resolve_all_multiple_targets(self, hierarchy):
        self._declare(hierarchy, "Dog", "speak")
        self._declare(hierarchy, "Cat", "speak")
        targets = hierarchy.resolve_all(["Dog", "Cat"], "speak")
        assert {t.qualified_name for t in targets} == {"Dog.speak", "Cat.speak"}

    def test_declare_method_on_wrong_class_rejected(self, hierarchy):
        with pytest.raises(TypeSystemError):
            hierarchy.get("Dog").declare_method(MethodSignature("Cat", "meow"))


class TestMethodSignature:
    def test_num_params_includes_receiver(self):
        signature = MethodSignature("Service", "handle", ("Request",))
        assert signature.num_params == 2

    def test_static_has_no_receiver(self):
        signature = MethodSignature("Service", "create", ("Request",), is_static=True)
        assert signature.num_params == 1

    def test_returns_value(self):
        assert MethodSignature("A", "m", return_type="int").returns_value
        assert not MethodSignature("A", "m", return_type="void").returns_value

    def test_returns_reference(self):
        assert MethodSignature("A", "m", return_type="Dog").returns_reference
        assert not MethodSignature("A", "m", return_type="int").returns_reference
