"""Diagnostic records: ordering, rendering, JSON shape, and baselines."""

import json

import pytest

from repro.checks import (
    BASELINE_VERSION,
    Baseline,
    BaselineError,
    Diagnostic,
    Location,
    Severity,
    diagnostics_to_dict,
    has_errors,
    render_text,
    sort_diagnostics,
)


def _diag(id="IR001", severity=Severity.WARNING, message="m", location=None):
    return Diagnostic(id=id, severity=severity, check="c", message=message,
                      location=location or Location())


class TestSeverityAndLocation:
    def test_severity_orders_worst_last_in_enum(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR.label == "error"

    def test_anchor_composes_method_block_flow(self):
        loc = Location(method="Main.main", block="entry", flow=3,
                       flow_kind="invoke")
        assert loc.anchor() == "method:Main.main/block:entry/flow:3(invoke)"

    def test_key_combines_id_and_anchor(self):
        diag = _diag(location=Location(method="A.f"))
        assert diag.key == "IR001@method:A.f"

    def test_program_wide_key_is_the_bare_id(self):
        assert _diag(location=Location()).key == "IR001"


class TestOrderingAndRendering:
    def test_sort_puts_errors_first_then_id(self):
        warning = _diag(id="IR005", severity=Severity.WARNING)
        error = _diag(id="AUD002", severity=Severity.ERROR)
        info = _diag(id="IR001", severity=Severity.INFO)
        ordered = sort_diagnostics([info, warning, error])
        assert [d.severity for d in ordered] == [
            Severity.ERROR, Severity.WARNING, Severity.INFO]

    def test_render_text_footer_counts(self):
        text = render_text([_diag(severity=Severity.ERROR), _diag()])
        assert "2 finding(s): 1 error(s), 1 warning(s)" in text

    def test_to_dict_round_trips_through_json(self):
        payload = diagnostics_to_dict([_diag(severity=Severity.ERROR)])
        decoded = json.loads(json.dumps(payload))
        assert decoded["counts"] == {"error": 1, "warning": 0, "info": 0}
        assert decoded["diagnostics"][0]["id"] == "IR001"

    def test_has_errors_ignores_warnings(self):
        assert not has_errors([_diag()])
        assert has_errors([_diag(severity=Severity.ERROR)])


class TestBaseline:
    def test_suppresses_by_bare_id_and_full_key(self):
        anchored = _diag(id="IR003", location=Location(field="A.x"))
        other = _diag(id="IR004", location=Location(field="A.y"))
        baseline = Baseline.from_json(json.dumps(
            {"version": BASELINE_VERSION,
             "suppress": ["IR003", "IR004@field:A.z"]}))
        kept, suppressed = baseline.apply([anchored, other])
        assert kept == [other]
        assert suppressed == [anchored]

    def test_rejects_wrong_version_and_shape(self):
        with pytest.raises(BaselineError):
            Baseline.from_json(json.dumps({"version": 99, "suppress": []}))
        with pytest.raises(BaselineError):
            Baseline.from_json(json.dumps({"version": BASELINE_VERSION,
                                           "suppress": [1]}))
        with pytest.raises(BaselineError):
            Baseline.from_json("[]")

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(Baseline(["IR001"]).to_json())
        assert Baseline.from_file(str(path)).suppresses(_diag())
