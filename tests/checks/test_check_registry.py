"""The check registry: registration, lookup, selection, and baselines."""

import pytest

from repro.checks import (
    AUDIT_CHECKS,
    Baseline,
    Check,
    CheckContext,
    Diagnostic,
    LINT_CHECKS,
    Location,
    Severity,
    UnknownCheckError,
    available_checks,
    get_check,
    register_check,
    run_checks,
    unregister_check,
)
from repro.ir.program import Program


def _dummy_check(name="dummy", kind="lint", ids=("XX001",)):
    def run(context):
        return [Diagnostic(id=ids[0], severity=Severity.WARNING,
                           check=name, message="dummy", location=Location())]
    return Check(name=name, kind=kind, ids=ids, description="a test check",
                 run=run)


class TestRegistry:
    def test_builtin_checks_are_registered(self):
        names = {check.name for check in available_checks()}
        for check in LINT_CHECKS + AUDIT_CHECKS:
            assert check.name in names

    def test_lint_sorts_before_audit(self):
        kinds = [check.kind for check in available_checks()]
        assert kinds == sorted(kinds, key=("lint", "audit").index)

    def test_kind_filter(self):
        audits = available_checks(kind="audit")
        assert audits and all(check.kind == "audit" for check in audits)

    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownCheckError, match="residue"):
            get_check("no-such-check")

    def test_register_replace_and_unregister(self):
        check = _dummy_check()
        register_check(check)
        try:
            with pytest.raises(ValueError):
                register_check(check)
            register_check(check, replace=True)
        finally:
            unregister_check("dummy")
        with pytest.raises(UnknownCheckError):
            get_check("dummy")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            _dummy_check(kind="style")


class TestRunChecks:
    def test_names_selection_and_baseline(self):
        check = _dummy_check()
        register_check(check)
        try:
            context = CheckContext(program=Program())
            found = run_checks(context, names=["dummy"])
            assert [d.id for d in found] == ["XX001"]
            silenced = run_checks(context, names=["dummy"],
                                  baseline=Baseline(["XX001"]))
            assert silenced == []
        finally:
            unregister_check("dummy")

    def test_audit_checks_are_empty_without_state(self):
        context = CheckContext(program=Program())
        assert run_checks(context, kind="audit") == []
