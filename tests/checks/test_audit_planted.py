"""Planted fixpoint corruption: every audit fires by its stable AUD0xx id.

A green audit only means something if a red state turns it red, so each
test takes a genuinely converged solve, corrupts exactly one invariant the
way a solver bug would, and asserts the matching stable id fires — and
*only* that corruption family.
"""

import pickle

import pytest

from repro.checks import audit_snapshot, audit_state
from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.flows import InvokeFlow
from repro.ir.delta import ProgramFingerprint
from repro.lang import compile_source
from repro.lattice.value_state import ValueState

SOURCE = """
class Greeter {
    int greet() { return 1; }
}
class LoudGreeter extends Greeter {
    int greet() { return 2; }
}
class Main {
    static void main() {
        Greeter greeter = new LoudGreeter();
        greeter.greet();
    }
}
"""


@pytest.fixture
def solved():
    program = compile_source(SOURCE)
    result = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
    return program, result.solver_state


def _ids(diagnostics):
    return {diag.id for diag in diagnostics}


def test_clean_state_is_the_control(solved):
    program, state = solved
    assert audit_state(state, program) == []


def test_aud001_worklist_residue(solved):
    program, state = solved
    next(iter(state.pvpg.all_flows())).in_worklist = True
    assert "AUD001" in _ids(audit_state(state, program, snapshot=False))


def test_aud001_link_queue_residue(solved):
    program, state = solved
    invoke = next(flow for flow in state.pvpg.all_flows()
                  if isinstance(flow, InvokeFlow))
    invoke.in_link_queue = True
    assert "AUD001" in _ids(audit_state(state, program, snapshot=False))


def test_aud002_dropped_flow_state(solved):
    # A buggy solver "loses" a propagated value: the flow's state shrinks
    # below its accumulated input, so one more recompute would re-grow it.
    program, state = solved
    victim = next(flow for flow in state.pvpg.all_flows()
                  if not flow.input_state.is_empty)
    victim.state = ValueState.empty()
    findings = audit_state(state, program, snapshot=False)
    assert "AUD002" in _ids(findings)


def test_aud003_disabled_predicate_target(solved):
    program, state = solved
    flow = next(flow for flow in state.pvpg.all_flows()
                if flow.enabled and not flow.state.is_empty
                and flow.predicate_targets)
    flow.predicate_targets[0].enabled = False
    assert "AUD003" in _ids(audit_state(state, program, snapshot=False))


def test_aud004_dropped_call_edge(solved):
    program, state = solved
    invoke = next(flow for flow in state.pvpg.all_flows()
                  if isinstance(flow, InvokeFlow) and flow.linked_callees)
    invoke.linked_callees.pop()
    findings = audit_state(state, program, snapshot=False)
    assert "AUD004" in _ids(findings)
    assert any("missing" in d.message for d in findings)


def test_aud004_phantom_callee(solved):
    program, state = solved
    invoke = next(flow for flow in state.pvpg.all_flows()
                  if isinstance(flow, InvokeFlow))
    invoke.linked_callees.add("Ghost.spook")
    findings = audit_state(state, program, snapshot=False)
    assert "AUD004" in _ids(findings)
    assert any("neither reachable nor a recorded stub" in d.message
               for d in findings)


def test_aud004_reachable_without_graph(solved):
    program, state = solved
    state.reachable.add("Ghost.spook")
    assert "AUD004" in _ids(audit_state(state, program, snapshot=False))


def test_aud005_saturated_flow_under_policy_off(solved):
    program, state = solved
    flow = next(iter(state.pvpg.all_flows()))
    flow.saturated = True
    findings = audit_state(state, program, snapshot=False)
    assert "AUD005" in _ids(findings)


def test_aud006_forged_snapshot_fingerprint(solved):
    # Pickle-level surgery: replace the stamped fingerprint with one of a
    # program whose method body differs, as if the snapshot were reused
    # across a non-monotone edit.  The restore validation must refuse it.
    program, state = solved
    edited = compile_source(SOURCE.replace("return 1", "return 9"))
    payload = pickle.loads(state.to_bytes(program))
    payload["fingerprint"] = ProgramFingerprint.of(edited)
    forged = pickle.dumps(payload)
    findings = audit_snapshot(forged, program)
    assert _ids(findings) == {"AUD006"}


def test_aud006_truncated_snapshot_blob(solved):
    program, state = solved
    blob = state.to_bytes(program)
    findings = audit_snapshot(blob[: len(blob) // 2], program)
    assert _ids(findings) == {"AUD006"}


def test_aud006_wraps_corruption_found_after_restore(solved):
    # The corruption lives *inside* the snapshot: the restored state fails
    # its own re-audit, reported under the snapshot check's id.
    program, state = solved
    next(iter(state.pvpg.all_flows())).in_worklist = True
    blob = state.to_bytes(program)
    findings = audit_snapshot(blob, program)
    assert _ids(findings) == {"AUD006"}
    assert any("AUD001" in d.message for d in findings)


def test_aud007_state_predating_the_warm_barrier(solved):
    program, state = solved
    state.session_generation = 3
    clean = audit_state(state, program, warm_barrier=3, snapshot=False)
    assert "AUD007" not in _ids(clean)
    stale = audit_state(state, program, warm_barrier=5, snapshot=False)
    assert "AUD007" in _ids(stale)
