"""IR lint passes: each planted pattern fires its stable IR0xx id.

Programs are hand-built with :class:`ProgramBuilder` (or compiled from
source) so every finding is planted deliberately; the clean fixture
asserts the converse — a tidy program lints silent.
"""

from repro.checks import CheckContext, Severity, lint_program, run_checks
from repro.ir.builder import ProgramBuilder
from repro.ir.delta import ProgramDelta
from repro.lang import compile_source

CLEAN_SOURCE = """
class Greeter {
    int greet() { return 1; }
}
class Main {
    static void main() {
        Greeter greeter = new Greeter();
        greeter.greet();
    }
}
"""


def _ids(diagnostics):
    return {diag.id for diag in diagnostics}


def test_clean_program_lints_silent():
    assert lint_program(compile_source(CLEAN_SOURCE)) == []


def test_ir001_dead_block():
    pb = ProgramBuilder()
    pb.declare_class("Main")
    mb = pb.method("Main", "main", is_static=True)
    mb.return_void()
    mb.label("orphanBlock")
    mb.return_void()
    pb.finish_method(mb)
    pb.add_entry_point("Main.main")
    program = pb.build()
    diagnostics = lint_program(program)
    assert "IR001" in _ids(diagnostics)
    [finding] = [d for d in diagnostics if d.id == "IR001"]
    assert finding.location.block == "orphanBlock"


def test_ir002_unreachable_method():
    pb = ProgramBuilder()
    pb.declare_class("Main")
    pb.declare_class("Util")
    mb = pb.method("Main", "main", is_static=True)
    mb.return_void()
    pb.finish_method(mb)
    mb = pb.method("Util", "neverCalled")
    mb.return_void()
    pb.finish_method(mb)
    pb.add_entry_point("Main.main")
    program = pb.build()
    diagnostics = lint_program(program)
    [finding] = [d for d in diagnostics if d.id == "IR002"]
    assert finding.location.method == "Util.neverCalled"


def test_ir002_name_based_closure_is_an_over_approximation():
    # Main virtually calls poke(); *every* method named poke counts as
    # reached, even on a class the solver would prove receiver-less.
    source = CLEAN_SOURCE + """
class Other {
    int greet() { return 2; }
}
"""
    diagnostics = lint_program(compile_source(source))
    assert not any(d.id == "IR002" for d in diagnostics)


def test_ir003_stored_never_loaded_and_ir004_loaded_never_stored():
    pb = ProgramBuilder()
    pb.declare_class("Main")
    pb.declare_class("Box")
    pb.declare_field("Box", "writeOnly", "Box")
    pb.declare_field("Box", "readOnly", "Box")
    mb = pb.method("Main", "main", is_static=True)
    box = mb.assign_new("Box")
    mb.store_field(box, "writeOnly", box)
    mb.load_field(box, "readOnly")
    mb.return_void()
    pb.finish_method(mb)
    pb.add_entry_point("Main.main")
    program = pb.build()
    diagnostics = lint_program(program)
    ir003 = [d for d in diagnostics if d.id == "IR003"]
    ir004 = [d for d in diagnostics if d.id == "IR004"]
    assert [d.location.field for d in ir003] == ["Box.writeOnly"]
    assert [d.location.field for d in ir004] == ["Box.readOnly"]


def test_ir005_undispatchable_virtual_call():
    pb = ProgramBuilder()
    pb.declare_class("Main")
    pb.declare_class("Ghost")
    mb = pb.method("Ghost", "haunt")
    mb.return_void()
    pb.finish_method(mb)
    mb = pb.method("Main", "main", is_static=True)
    phantom = mb.assign_null()
    mb.invoke_virtual(phantom, "vanish")
    mb.return_void()
    pb.finish_method(mb)
    pb.add_entry_point("Main.main")
    program = pb.build()
    [finding] = [d for d in lint_program(program) if d.id == "IR005"]
    assert "vanish" in finding.message


def test_ir006_root_naming_nothing_is_an_error():
    program = compile_source(CLEAN_SOURCE)
    diagnostics = lint_program(program, roots=("Main.noSuchRoot",))
    [finding] = [d for d in diagnostics if d.id == "IR006"]
    assert finding.severity is Severity.ERROR


def test_ir007_non_monotone_delta_pattern():
    # Grafting a field onto a class the program already has would break
    # warm resumption; the lint flags the script before anyone applies it.
    program = compile_source(CLEAN_SOURCE)
    delta = ProgramDelta("graft")
    delta.declare_field("Greeter", "grafted", "Greeter")
    context = CheckContext(program=program, delta=delta)
    diagnostics = run_checks(context, names=["delta-risk"])
    assert "IR007" in _ids(diagnostics)


def test_ir007_monotone_delta_is_silent():
    program = compile_source(CLEAN_SOURCE)
    delta = ProgramDelta("fresh")
    delta.declare_class("Fresh", superclass="Greeter")
    delta.declare_field("Fresh", "x", "Fresh")
    context = CheckContext(program=program, delta=delta)
    assert run_checks(context, names=["delta-risk"]) == []
