"""Post-solve audits are green across every analyzer x policy combination.

The matrix is the contract the fuzz oracle and the daemon rely on: a
*correct* solve — any config-backed analyzer, any scheduling, saturation
on or off, cold or warm — audits clean, including the snapshot round-trip.
"""

import pytest

from repro.api import AnalysisSession
from repro.api.registry import config_backed_analyzers, get_analyzer
from repro.checks import audit_result, audit_snapshot, audit_state
from repro.core.analysis import SkipFlowAnalysis
from repro.core.kernel import SolverPolicy
from repro.ir.delta import ProgramDelta
from repro.lang import compile_source
from repro.workloads.generator import generate_benchmark
from repro.workloads.suites import wide_hierarchy_suite
from tests.conftest import build_virtual_threads_program

SCHEDULINGS = ("fifo", "lifo", "degree")
SATURATIONS = (("off", None), ("declared-type", 8))

SOURCE = """
class Config {
    boolean isFeatureEnabled() { return false; }
}
class Feature {
    void start() { }
}
class Main {
    static void main() {
        Config config = new Config();
        if (config.isFeatureEnabled()) {
            Feature feature = new Feature();
            feature.start();
        }
    }
}
"""


def _programs():
    yield "feature-flag", compile_source(SOURCE)
    yield "virtual-threads", build_virtual_threads_program(True)
    spec = min(wide_hierarchy_suite(), key=lambda s: s.name != "wide-flat-64")
    yield spec.name, generate_benchmark(spec)


@pytest.mark.parametrize("analyzer_name", config_backed_analyzers())
@pytest.mark.parametrize("scheduling", SCHEDULINGS)
@pytest.mark.parametrize("saturation,threshold", SATURATIONS)
def test_every_combo_audits_clean(analyzer_name, scheduling, saturation,
                                  threshold):
    policy = SolverPolicy(scheduling=scheduling, saturation=saturation,
                          saturation_threshold=threshold)
    config = get_analyzer(analyzer_name).config(policy=policy)
    for label, program in _programs():
        result = SkipFlowAnalysis(program, config).run()
        findings = audit_state(result.solver_state, program)
        assert findings == [], (
            f"{label} [{analyzer_name} {policy.label}]: "
            + "; ".join(d.render() for d in findings))


def test_audit_result_reads_the_report_payload():
    program = compile_source(SOURCE)
    report = get_analyzer("skipflow").analyze(program)
    assert audit_result(report) == []


def test_audit_result_without_solver_state_is_empty():
    program = compile_source(SOURCE)
    report = get_analyzer("cha").analyze(program)
    assert audit_result(report) == []


def test_stamped_snapshot_blob_audits_clean():
    program = compile_source(SOURCE)
    result = SkipFlowAnalysis(program,
                              get_analyzer("skipflow").config()).run()
    blob = result.solver_state.to_bytes(program)
    assert audit_snapshot(blob, program) == []


def test_warm_resumed_session_state_audits_clean():
    session = AnalysisSession.from_source(SOURCE)
    session.run("skipflow")
    delta = ProgramDelta("extend")
    delta.declare_class("LoudConfig", superclass="Config")
    mb = delta.method("LoudConfig", "isFeatureEnabled", return_type="boolean")
    one = mb.assign_int(1)
    mb.return_(one)
    delta.finish_method(mb)
    session.update(delta)
    report = session.run("skipflow")
    findings = audit_state(report.raw.solver_state, session.program,
                           warm_barrier=session.warm_barrier)
    assert findings == []
