"""Tests for value states (lattice L) including hypothesis lattice laws."""

from hypothesis import given, strategies as st

from repro.ir.types import NULL_TYPE_NAME, TypeHierarchy
from repro.lattice.typeset import filter_instanceof, filter_null_comparison
from repro.lattice.value_state import ValueState


class TestConstruction:
    def test_empty(self):
        state = ValueState.empty()
        assert state.is_empty
        assert not state
        assert len(state) == 0

    def test_of_type(self):
        state = ValueState.of_type("A")
        assert state.contains_type("A")
        assert not state.is_empty
        assert state.reference_types == frozenset({"A"})

    def test_null(self):
        state = ValueState.null()
        assert state.contains_null
        assert state.is_null_only
        assert state.reference_types == frozenset()

    def test_of_int(self):
        state = ValueState.of_int(5)
        assert state.is_constant
        assert state.constant_value == 5
        assert not state.has_any

    def test_any_primitive(self):
        state = ValueState.any_primitive()
        assert state.has_any
        assert not state.is_constant
        assert state.constant_value is None

    def test_iteration_and_repr(self):
        state = ValueState.of_types(["B", "A"]).join(ValueState.of_int(2))
        assert list(state) == ["A", "B", 2]
        assert "ValueState" in repr(state)


class TestJoin:
    def test_join_with_empty(self):
        a = ValueState.of_type("A")
        assert a.join(ValueState.empty()) == a
        assert ValueState.empty().join(a) == a

    def test_join_types_is_union(self):
        joined = ValueState.of_type("A").join(ValueState.of_type("B"))
        assert joined.types == frozenset({"A", "B"})

    def test_join_same_constant(self):
        assert ValueState.of_int(1).join(ValueState.of_int(1)).constant_value == 1

    def test_join_different_constants_is_any(self):
        joined = ValueState.of_int(0).join(ValueState.of_int(1))
        assert joined.has_any

    def test_join_mixed_parts(self):
        joined = ValueState.of_type("A").join(ValueState.of_int(3))
        assert joined.contains_type("A")
        assert joined.constant_value is None  # constant plus types is not "a constant"
        assert joined.primitive == 3

    def test_leq(self):
        small = ValueState.of_type("A")
        big = ValueState.of_types(["A", "B"])
        assert small.leq(big)
        assert not big.leq(small)
        assert ValueState.empty().leq(small)
        assert ValueState.of_int(2).leq(ValueState.any_primitive())


class TestModifiers:
    def test_without_null(self):
        state = ValueState.of_types(["A", NULL_TYPE_NAME])
        assert state.without_null().types == frozenset({"A"})
        assert not state.without_null().contains_null

    def test_widen_primitive(self):
        assert ValueState.of_int(7).widen_primitive().has_any
        assert ValueState.of_type("A").widen_primitive() == ValueState.of_type("A")
        assert ValueState.any_primitive().widen_primitive().has_any

    def test_only_types_and_only_primitive(self):
        state = ValueState.of_type("A").join(ValueState.of_int(3))
        assert state.only_types() == ValueState.of_type("A")
        assert state.only_primitive() == ValueState.of_int(3)

    def test_equality_and_hash(self):
        a = ValueState.of_types(["A", "B"])
        b = ValueState.of_types(["B", "A"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != ValueState.of_type("A")
        assert a != "not a state"


class TestTypeSetFilters:
    def setup_method(self):
        self.hierarchy = TypeHierarchy()
        self.hierarchy.declare_class("Animal")
        self.hierarchy.declare_class("Dog", superclass="Animal")
        self.hierarchy.declare_class("Cat", superclass="Animal")

    def test_instanceof_keeps_subtypes(self):
        state = ValueState.of_types(["Dog", "Cat"])
        filtered = filter_instanceof(state, self.hierarchy, "Dog")
        assert filtered.types == frozenset({"Dog"})

    def test_instanceof_negated_keeps_non_subtypes(self):
        state = ValueState.of_types(["Dog", "Cat"])
        filtered = filter_instanceof(state, self.hierarchy, "Dog", negated=True)
        assert filtered.types == frozenset({"Cat"})

    def test_null_fails_positive_instanceof(self):
        state = ValueState.of_types(["Dog", NULL_TYPE_NAME])
        assert filter_instanceof(state, self.hierarchy, "Animal").types == frozenset({"Dog"})

    def test_null_passes_negated_instanceof(self):
        state = ValueState.of_types(["Dog", NULL_TYPE_NAME])
        filtered = filter_instanceof(state, self.hierarchy, "Animal", negated=True)
        assert filtered.types == frozenset({NULL_TYPE_NAME})

    def test_primitive_never_passes_type_check(self):
        assert filter_instanceof(ValueState.of_int(1), self.hierarchy, "Animal").is_empty

    def test_null_comparison_keep_null(self):
        state = ValueState.of_types(["Dog", NULL_TYPE_NAME])
        assert filter_null_comparison(state, keep_null=True) == ValueState.null()
        assert filter_null_comparison(ValueState.of_type("Dog"), keep_null=True).is_empty

    def test_null_comparison_drop_null(self):
        state = ValueState.of_types(["Dog", NULL_TYPE_NAME])
        assert filter_null_comparison(state, keep_null=False).types == frozenset({"Dog"})


_states = st.builds(
    lambda types, prim: ValueState.of_types(types).join(prim),
    st.sets(st.sampled_from(["A", "B", "C", NULL_TYPE_NAME]), max_size=3),
    st.sampled_from([ValueState.empty(), ValueState.of_int(0), ValueState.of_int(1),
                     ValueState.any_primitive()]),
)


class TestLatticeLaws:
    @given(_states, _states)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(_states, _states, _states)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(_states)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(_states, _states)
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert a.leq(joined)
        assert b.leq(joined)

    @given(_states, _states)
    def test_leq_antisymmetric_on_equal_joins(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b

    @given(_states)
    def test_empty_is_bottom(self, a):
        assert ValueState.empty().leq(a)
        assert ValueState.empty().join(a) == a
