"""Tests for the primitive lattice P (Figure 6)."""

from hypothesis import given, strategies as st

from repro.lattice.primitive import ANY, AnyValue, join_all_constants, join_constants, primitive_leq


class TestJoin:
    def test_empty_is_identity(self):
        assert join_constants(None, 5) == 5
        assert join_constants(5, None) == 5
        assert join_constants(None, None) is None

    def test_same_constant(self):
        assert join_constants(3, 3) == 3

    def test_different_constants_collapse_to_any(self):
        assert join_constants(0, 1) is ANY

    def test_any_absorbs(self):
        assert join_constants(ANY, 7) is ANY
        assert join_constants(7, ANY) is ANY
        assert join_constants(ANY, ANY) is ANY

    def test_join_all(self):
        assert join_all_constants([]) is None
        assert join_all_constants([4, 4, 4]) == 4
        assert join_all_constants([4, 5]) is ANY


class TestOrdering:
    def test_empty_below_everything(self):
        assert primitive_leq(None, None)
        assert primitive_leq(None, 3)
        assert primitive_leq(None, ANY)

    def test_constant_below_any(self):
        assert primitive_leq(3, ANY)
        assert not primitive_leq(ANY, 3)

    def test_constants_incomparable(self):
        assert not primitive_leq(3, 4)
        assert primitive_leq(3, 3)

    def test_any_not_below_empty(self):
        assert not primitive_leq(ANY, None)
        assert not primitive_leq(3, None)


class TestAnySingleton:
    def test_singleton_identity(self):
        assert AnyValue() is ANY

    def test_equality_and_hash(self):
        assert AnyValue() == ANY
        assert hash(AnyValue()) == hash(ANY)
        assert repr(ANY) == "Any"


_elements = st.one_of(st.none(), st.integers(-5, 5), st.just(ANY))


class TestLatticeLaws:
    @given(_elements, _elements)
    def test_join_commutative(self, a, b):
        assert join_constants(a, b) == join_constants(b, a)

    @given(_elements, _elements, _elements)
    def test_join_associative(self, a, b, c):
        assert join_constants(join_constants(a, b), c) == join_constants(a, join_constants(b, c))

    @given(_elements)
    def test_join_idempotent(self, a):
        assert join_constants(a, a) == a

    @given(_elements, _elements)
    def test_join_is_upper_bound(self, a, b):
        joined = join_constants(a, b)
        assert primitive_leq(a, joined)
        assert primitive_leq(b, joined)
