"""Property tests: each integer worklist mirrors its object counterpart.

The arena kernel re-implements every scheduling policy over plain fids
(``_FifoFids``/``_LifoFids``/``_DegreeFids``/``_RpoFids``/``_HybridFids``
in :mod:`repro.core.kernel.arena_kernel`); the bit-identity of the whole
kernel rests on each mirror popping fids in *exactly* the order its object
counterpart pops flows.  These tests check that contract directly: random
flow graphs, random interleavings of pushes and pops (respecting the
solver's at-most-once-pending dedup bit), and a pop-by-pop comparison —
far more schedules than the end-to-end grid can reach.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.kernel.arena_kernel import (  # noqa: E402
    _DegreeFids,
    _FifoFids,
    _HybridFids,
    _LifoFids,
    _RpoFids,
)
from repro.core.kernel.scheduling import (  # noqa: E402
    DegreeScheduling,
    FifoScheduling,
    HybridScheduling,
    LifoScheduling,
    RpoScheduling,
)

PAIRS = [
    ("fifo", FifoScheduling, _FifoFids),
    ("lifo", LifoScheduling, _LifoFids),
    ("degree", DegreeScheduling, _DegreeFids),
    ("rpo", RpoScheduling, _RpoFids),
    ("hybrid", HybridScheduling, _HybridFids),
]


class _FakeFlow:
    """Just enough of a flow for the object policies: uid + edge lists."""

    def __init__(self, uid: int) -> None:
        self.uid = uid
        self.uses: List["_FakeFlow"] = []
        self.observers: List["_FakeFlow"] = []
        self.predicate_targets: List["_FakeFlow"] = []


class _FakeSolver:
    """The two hooks the fid mirrors call back into the arena solver."""

    def __init__(self, flows: List[_FakeFlow]) -> None:
        self._flows: Dict[int, _FakeFlow] = {flow.uid: flow for flow in flows}

    def _degree(self, fid: int) -> int:
        flow = self._flows[fid]
        return (len(flow.uses) + len(flow.observers)
                + len(flow.predicate_targets))

    def _uses_of(self, fid: int):
        return [use.uid for use in self._flows[fid].uses]


def _build_graph(n: int, edges: List[int], extras: List[int]):
    """A deterministic random graph from drawn integers.

    ``edges`` seeds the use edges (including self loops and cycles);
    ``extras`` pads observers/predicate_targets so out-degrees differ from
    use-edge counts (degree and hybrid keys must see the *total* fan-out).
    """
    flows = [_FakeFlow(uid) for uid in range(n)]
    for position, raw in enumerate(edges):
        source = flows[position % n]
        source.uses.append(flows[raw % n])
    for position, raw in enumerate(extras):
        flow = flows[position % n]
        if raw % 2:
            flow.observers.append(flows[raw % n])
        else:
            flow.predicate_targets.append(flows[raw % n])
    return flows


@st.composite
def _scenarios(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(st.lists(st.integers(min_value=0, max_value=10 * n),
                          max_size=4 * n))
    extras = draw(st.lists(st.integers(min_value=0, max_value=10 * n),
                           max_size=2 * n))
    # The operation tape: each entry either pushes a specific flow or pops.
    ops = draw(st.lists(
        st.one_of(st.integers(min_value=0, max_value=n - 1), st.none()),
        min_size=1, max_size=6 * n))
    return n, edges, extras, ops


@pytest.mark.parametrize("name,object_policy,fid_mirror", PAIRS,
                         ids=[pair[0] for pair in PAIRS])
class TestMirrorsPopInLockstep:
    @settings(max_examples=60, deadline=None)
    @given(scenario=_scenarios())
    def test_random_interleavings(self, name, object_policy, fid_mirror,
                                  scenario):
        n, edges, extras, ops = scenario
        flows = _build_graph(n, edges, extras)
        solver = _FakeSolver(flows)
        reference = object_policy()
        mirror = fid_mirror(solver)

        pending = set()
        for op in ops:
            if op is None or op in pending:
                # A pop — or a push of an already-pending flow, which the
                # solver's dedup bit would suppress; treat it as a pop too
                # so the tape stays productive.
                if not pending:
                    continue
                assert len(mirror) == len(reference)
                flow = reference.pop()
                fid = mirror.pop()
                assert fid == flow.uid, (
                    f"{name}: mirror popped fid {fid}, object policy "
                    f"popped uid {flow.uid}")
                pending.discard(flow.uid)
            else:
                pending.add(op)
                reference.push(flows[op])
                mirror.push(op)

        # Drain: the remaining pops must also agree, in full.
        while pending:
            assert len(mirror) == len(reference) == len(pending)
            flow = reference.pop()
            fid = mirror.pop()
            assert fid == flow.uid
            pending.discard(flow.uid)
        assert len(mirror) == len(reference) == 0

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=10),
           edges=st.lists(st.integers(min_value=0, max_value=60),
                          max_size=30))
    def test_push_all_pop_all(self, name, object_policy, fid_mirror,
                              n, edges):
        """The batch shape both rpo variants care about: one full round."""
        flows = _build_graph(n, edges, [])
        solver = _FakeSolver(flows)
        reference = object_policy()
        mirror = fid_mirror(solver)
        for flow in flows:
            reference.push(flow)
            mirror.push(flow.uid)
        popped = [(mirror.pop(), reference.pop().uid) for _ in flows]
        assert [fid for fid, _ in popped] == [uid for _, uid in popped]
