"""The allocated-type saturation policy and the hybrid scheduling policy."""

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel import (
    AllocatedTypeSaturation,
    SaturationContext,
    allocated_types,
    available_saturation_policies,
    available_scheduling_policies,
    make_saturation_policy,
)
from repro.lang import compile_source
from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    HierarchySpec,
    generate_benchmark,
)

WIDE_SPEC = BenchmarkSpec(
    name="alloc-wide", suite="test", core_methods=25,
    guarded_modules=(GuardedModuleSpec("boolean_flag", 8),),
    hierarchies=(HierarchySpec(depth=2, fanout=5, call_sites=4,
                               guarded_methods=12),))

THRESHOLD = 8


def run_with(program, saturation, threshold=THRESHOLD):
    config = AnalysisConfig.skipflow()
    if saturation != "off":
        config = config.with_saturation_policy(saturation, threshold)
    return SkipFlowAnalysis(program, config).run()


class TestAllocatedTypes:
    def test_scans_allocation_sites(self):
        program = compile_source("""
class Used { }
class Ghost { }
class Main { static void main() { Used u = new Used(); } }
""")
        allocated = allocated_types(program)
        assert "Used" in allocated
        assert "Ghost" not in allocated

    def test_includes_root_parameter_origins(self):
        program = compile_source("""
class Plugin { void start() { } }
class Turbo extends Plugin { void start() { } }
class Host { void boot(Plugin plugin) { plugin.start() ; } }
""")
        assert allocated_types(program, roots=()) == frozenset()
        seeded = allocated_types(program, roots=("Host.boot",))
        # The receiver (Host) and the declared parameter subtree (Plugin,
        # Turbo) can all originate from conservative root seeding.
        assert {"Host", "Plugin", "Turbo"} <= seeded

    def test_includes_stub_return_origins(self):
        """Bodyless declared methods inject conservative return states.

        The solver's stub effects inject the instantiable subtypes of a
        bodyless callee's declared return type; the allocated sentinel must
        dominate those arrivals too, or joins skipped after a collapse
        would drop types the exact semantics propagates.
        """
        from repro.ir.types import MethodSignature

        program = compile_source("""
class Plugin { void start() { } }
class Turbo extends Plugin { void start() { } }
class Main { static void main() { } }
""")
        program.hierarchy.get("Main").declare_method(MethodSignature(
            declaring_class="Main", name="load", return_type="Plugin",
            is_static=True))
        allocated = allocated_types(program)
        assert {"Plugin", "Turbo"} <= allocated
        assert "allocated-type" in available_saturation_policies()
        program = compile_source("class Main { static void main() { } }")
        policy = make_saturation_policy("allocated-type", program.hierarchy,
                                        4, program=program)
        assert isinstance(policy, AllocatedTypeSaturation)
        with pytest.raises(ValueError, match="needs the program"):
            make_saturation_policy("allocated-type", program.hierarchy, 4)

    def test_sentinel_excludes_never_allocated_types(self):
        program = generate_benchmark(WIDE_SPEC)
        policy = AllocatedTypeSaturation(
            program.hierarchy, THRESHOLD,
            allocated_types(program, tuple(program.entry_points)))
        sentinel = policy.sentinel_for(None)
        assert "Alloc_wideHier0Rare" not in sentinel.types
        assert "Alloc_wideHier0L2N0" in sentinel.types  # an allocated leaf
        assert sentinel.contains_null and sentinel.has_any

    def test_context_dataclass_carries_the_solve(self):
        program = compile_source("class Main { static void main() { } }")
        context = SaturationContext(hierarchy=program.hierarchy, threshold=4,
                                    program=program, roots=("Main.main",))
        assert context.threshold == 4
        assert context.roots == ("Main.main",)


class TestRareGuardDischarge:
    """The ROADMAP promise: never-instantiated rare guards finally discharge."""

    def test_rare_guarded_payload_stays_dead(self):
        program = generate_benchmark(WIDE_SPEC)
        exact = run_with(program, "off")
        closed = run_with(program, "closed-world")
        allocated = run_with(program, "allocated-type")

        payload_entry = "Alloc_wideHier0PayloadEntry.enter"
        # The cutoff fired in both saturated runs.
        assert closed.stats.saturated_flows > 0
        assert allocated.stats.saturated_flows > 0
        # Closed-world re-inflates the rare-guarded payload; the allocated
        # sentinel excludes Rare, so the instanceof guard still discharges.
        assert payload_entry not in exact.reachable_methods
        assert payload_entry in closed.reachable_methods
        assert payload_entry not in allocated.reachable_methods

    def test_reinflation_is_smallest_of_all_sentinels(self):
        program = generate_benchmark(WIDE_SPEC)
        exact = run_with(program, "off")
        closed = run_with(program, "closed-world")
        declared = run_with(program, "declared-type")
        allocated = run_with(program, "allocated-type")
        assert (exact.reachable_method_count
                <= allocated.reachable_method_count
                < declared.reachable_method_count
                <= closed.reachable_method_count)

    def test_still_a_sound_over_approximation(self):
        program = generate_benchmark(WIDE_SPEC)
        exact = run_with(program, "off")
        allocated = run_with(program, "allocated-type")
        assert exact.reachable_methods <= allocated.reachable_methods


class TestHybridScheduling:
    def test_registered(self):
        assert "hybrid" in available_scheduling_policies()

    def test_reaches_the_fifo_fixpoint(self):
        program = generate_benchmark(WIDE_SPEC)
        fifo = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
        hybrid = SkipFlowAnalysis(
            program,
            AnalysisConfig.skipflow().with_scheduling("hybrid")).run()
        assert hybrid.reachable_methods == fifo.reachable_methods
        assert sorted(hybrid.call_edges()) == sorted(fifo.call_edges())

    def test_deterministic(self):
        program = generate_benchmark(WIDE_SPEC)
        config = AnalysisConfig.skipflow().with_scheduling("hybrid")
        first = SkipFlowAnalysis(program, config).run()
        second = SkipFlowAnalysis(program, config).run()
        assert first.steps == second.steps
        assert first.stats.joins == second.stats.joins

    def test_refreshes_priorities_at_batch_formation(self):
        """Degree keys on push-time fan-out; hybrid keys at round formation."""
        from repro.core.flows import Flow
        from repro.core.kernel.scheduling import HybridScheduling

        worklist = HybridScheduling()
        quiet = Flow("quiet")
        hub = Flow("hub")
        worklist.push(quiet)
        worklist.push(hub)
        # Edges added *after* the push, *before* the round forms.
        for _ in range(3):
            hub.add_use(Flow("sink"))
        assert worklist.pop() is hub  # refreshed priority wins
        assert worklist.pop() is quiet
        assert len(worklist) == 0
