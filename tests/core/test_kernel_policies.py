"""SolverPolicy validation and the AnalysisConfig policy plumbing."""

import pytest

from repro.core.analysis import AnalysisConfig
from repro.core.kernel import (
    DEFAULT_POLICY,
    SolverPolicy,
    available_saturation_policies,
    available_scheduling_policies,
    make_saturation_policy,
    make_scheduling_policy,
    register_saturation_policy,
    register_scheduling_policy,
)
from repro.core.kernel.scheduling import FifoScheduling


class TestSolverPolicy:
    def test_default_is_seed_setup(self):
        policy = SolverPolicy()
        assert policy.scheduling == "fifo"
        assert policy.saturation == "off"
        assert policy.saturation_threshold is None
        assert policy.is_default
        assert policy == DEFAULT_POLICY
        assert policy.label == "fifo/off"

    def test_label_shows_threshold(self):
        policy = SolverPolicy(scheduling="rpo", saturation="declared-type",
                              saturation_threshold=16)
        assert policy.label == "rpo/declared-type@16"
        assert not policy.is_default

    def test_unknown_scheduling_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling"):
            SolverPolicy(scheduling="random")

    def test_unknown_saturation_rejected(self):
        with pytest.raises(ValueError, match="unknown saturation"):
            SolverPolicy(saturation="open-world", saturation_threshold=4)

    def test_off_takes_no_threshold(self):
        with pytest.raises(ValueError, match="takes no threshold"):
            SolverPolicy(saturation="off", saturation_threshold=4)

    def test_cutoff_needs_threshold(self):
        with pytest.raises(ValueError, match="needs a saturation_threshold"):
            SolverPolicy(saturation="closed-world")
        with pytest.raises(ValueError, match=">= 1"):
            SolverPolicy(saturation="closed-world", saturation_threshold=0)

    def test_with_saturation_switches_coherently(self):
        policy = SolverPolicy().with_saturation("closed-world", 8)
        assert policy.saturation_threshold == 8
        assert policy.with_saturation("declared-type").saturation_threshold == 8
        back_off = policy.with_saturation("off")
        assert back_off == DEFAULT_POLICY


class TestRegistries:
    def test_builtin_names(self):
        assert available_scheduling_policies()[0] == "fifo"
        assert set(available_scheduling_policies()) >= {
            "fifo", "lifo", "degree", "rpo"}
        assert available_saturation_policies()[0] == "off"
        assert set(available_saturation_policies()) >= {
            "off", "closed-world", "declared-type"}

    def test_fresh_instance_per_solve(self):
        assert make_scheduling_policy("fifo") is not make_scheduling_policy("fifo")

    def test_unknown_names_listed(self):
        with pytest.raises(ValueError, match="fifo"):
            make_scheduling_policy("nope")

    def test_off_factory_returns_none(self):
        assert make_saturation_policy("off", None, None) is None
        assert make_saturation_policy("closed-world", None, None) is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduling_policy("fifo", FifoScheduling)
        with pytest.raises(ValueError, match="already registered"):
            register_saturation_policy(
                "closed-world", lambda hierarchy, threshold: None)

    def test_off_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_saturation_policy(
                "off", lambda hierarchy, threshold: None)


class TestConfigPlumbing:
    def test_default_config_has_default_policy(self):
        assert AnalysisConfig.skipflow().solver_policy == DEFAULT_POLICY

    def test_bare_threshold_engages_closed_world(self):
        config = AnalysisConfig.skipflow().with_saturation_threshold(8)
        assert config.saturation_policy == "closed-world"
        assert config.solver_policy.label == "fifo/closed-world@8"

    def test_dropping_threshold_resets_policy_to_off(self):
        config = (AnalysisConfig.skipflow()
                  .with_saturation_policy("declared-type", 8)
                  .with_saturation_threshold(None))
        assert config.saturation_policy == "off"
        assert config.solver_policy == DEFAULT_POLICY

    def test_saturation_policy_without_threshold_rejected(self):
        with pytest.raises(ValueError, match="needs a threshold"):
            AnalysisConfig.skipflow().with_saturation_policy("declared-type")

    def test_saturation_policy_keeps_existing_threshold(self):
        config = (AnalysisConfig.skipflow().with_saturation_threshold(8)
                  .with_saturation_policy("declared-type"))
        assert config.saturation_threshold == 8
        assert config.saturation_policy == "declared-type"

    def test_with_policy_round_trips(self):
        policy = SolverPolicy(scheduling="degree", saturation="declared-type",
                              saturation_threshold=4)
        config = AnalysisConfig.skipflow().with_policy(policy)
        assert config.solver_policy == policy
        assert config.scheduling == "degree"

    def test_policy_is_part_of_config_identity(self):
        base = AnalysisConfig.skipflow()
        assert base != base.with_scheduling("lifo")
        assert (base.with_saturation_threshold(8)
                != base.with_saturation_policy("declared-type", 8))

    def test_invalid_names_fail_at_construction(self):
        with pytest.raises(ValueError, match="unknown scheduling"):
            AnalysisConfig(scheduling="zigzag")
        with pytest.raises(ValueError, match="unknown saturation"):
            AnalysisConfig(saturation_policy="open-world",
                           saturation_threshold=4)
