"""SolverState: snapshotable fixpoint state and warm re-analysis.

The contract under test, in increasing strength:

* the cold path is "resume from the empty state" and behaves exactly like
  the pre-refactor solver (same counters, same results);
* a state snapshot round-trips through bytes and resumes as a no-op when
  nothing changed;
* after *any* additive (monotone) edit sequence, the resumed fixpoint
  equals the from-scratch fixpoint — reachable set, call edges, and the
  final value state of every flow — under **every** scheduling × saturation
  policy combination;
* non-monotone situations are refused loudly (config mismatch, stamped
  fingerprint rejecting the program).
"""

from collections import Counter

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel import available_scheduling_policies
from repro.core.solver import SkipFlowSolver
from repro.core.state import SolverState, SolverStateError
from repro.ir.delta import ProgramDelta
from repro.lang import compile_source
from repro.workloads.edits import build_edit_delta, default_edit_script
from repro.workloads.generator import (
    BenchmarkSpec,
    GuardedModuleSpec,
    HierarchySpec,
    generate_benchmark,
)

WIDE_SPEC = BenchmarkSpec(
    name="state-wide", suite="test", core_methods=25,
    guarded_modules=(GuardedModuleSpec("boolean_flag", 8),),
    hierarchies=(HierarchySpec(depth=2, fanout=5, call_sites=4),))

SMALL_SOURCE = """
class Base { int run() { return 1; } }
class Impl extends Base { int run() { return 2; } }
class Main {
    static void main() {
        Base b = new Impl();
        b.run();
    }
}
"""

#: The saturation grid of the equivalence test; threshold 4 is far below the
#: wide spec's 25-leaf field, so every cutoff actually fires.
SATURATIONS = (("off", None), ("closed-world", 4), ("declared-type", 4),
               ("allocated-type", 4))


def fixpoint_signature(result):
    """Everything warm-vs-cold must agree on: reachability, edges, states.

    Flow uids differ between solves, so flows are matched by
    (method, label, kind) with a multiset; value states are hash-consed and
    compare structurally.
    """
    pvpg = result.pvpg
    edges = set()
    states = Counter()
    for graph in pvpg.methods.values():
        for flow in graph.flows:
            states[(graph.qualified_name, flow.label, flow.kind.value,
                    flow.state)] += 1
        for invoke in graph.invoke_flows:
            for callee in invoke.linked_callees:
                edges.add((graph.qualified_name, invoke.label, callee))
    for name, field_flow in pvpg.field_flows.items():
        states[("<fields>", name, field_flow.kind.value,
                field_flow.state)] += 1
    return frozenset(result.reachable_methods), edges, states


def config_for(scheduling, saturation, threshold):
    config = AnalysisConfig.skipflow().with_scheduling(scheduling)
    if threshold is not None:
        config = config.with_saturation_policy(saturation, threshold)
    return config


class TestColdPath:
    def test_explicit_empty_state_matches_default(self):
        program = compile_source(SMALL_SOURCE)
        default = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
        explicit = SkipFlowAnalysis(
            program, AnalysisConfig.skipflow(),
            state=SolverState.empty()).run()
        assert default.steps == explicit.steps
        assert default.reachable_methods == explicit.reachable_methods
        assert fixpoint_signature(default) == fixpoint_signature(explicit)

    def test_result_carries_its_state(self):
        program = compile_source(SMALL_SOURCE)
        result = SkipFlowAnalysis(program).run()
        state = result.solver_state
        assert isinstance(state, SolverState)
        assert state.pvpg is result.pvpg
        assert state.counters()["steps"] == result.steps
        assert not state.is_fresh
        assert state.seeded_roots == ["Main.main"]

    def test_state_rejects_other_configs(self):
        program = compile_source(SMALL_SOURCE)
        result = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
        with pytest.raises(SolverStateError, match="configuration"):
            SkipFlowSolver(program, AnalysisConfig.baseline_pta(),
                           state=result.solver_state)


class TestSnapshots:
    def test_round_trip_preserves_the_fixpoint(self):
        program = generate_benchmark(WIDE_SPEC)
        result = SkipFlowAnalysis(program).run()
        restored = SolverState.from_bytes(result.solver_state.to_bytes())
        assert restored.counters() == result.solver_state.counters()
        assert restored.reachable == result.solver_state.reachable
        resumed = SkipFlowAnalysis(program, state=restored).run()
        assert fixpoint_signature(resumed) == fixpoint_signature(result)

    def test_resuming_an_unchanged_program_is_a_no_op(self):
        program = generate_benchmark(WIDE_SPEC)
        result = SkipFlowAnalysis(program).run()
        state = SolverState.from_bytes(result.solver_state.to_bytes(program))
        before = state.counters()
        resumed = SkipFlowAnalysis(program, state=state).run()
        assert resumed.steps - before["steps"] == 0

    def test_restored_flows_never_collide_with_fresh_uids(self):
        program = compile_source(SMALL_SOURCE)
        result = SkipFlowAnalysis(program).run()
        restored = SolverState.from_bytes(result.solver_state.to_bytes())
        floor = restored.max_flow_uid()
        from repro.core.flows import SourceFlow
        from repro.ir.values import ConstantExpr

        fresh = SourceFlow("probe", "Test.test", ConstantExpr.int_const(1))
        assert fresh.uid > floor

    def test_fork_is_independent(self):
        program = compile_source(SMALL_SOURCE)
        result = SkipFlowAnalysis(program).run()
        branch = result.solver_state.fork()
        delta = ProgramDelta()
        delta.declare_class("Impl2", superclass="Base")
        mb = delta.method("Impl2", "run", return_type="int")
        mb.return_(mb.assign_int(3))
        delta.finish_method(mb)
        delta.add_call_site("Main", "main")
        delta.apply_to(program, require_monotone=True)
        SkipFlowAnalysis(program, state=branch).run()
        # The original state was not consumed by the branch's resume.
        assert result.solver_state.reachable == result.reachable_methods

    def test_stamped_snapshot_rejects_non_monotone_programs(self):
        program = compile_source(SMALL_SOURCE)
        result = SkipFlowAnalysis(program).run()
        blob = result.solver_state.to_bytes(program)
        edited = compile_source(SMALL_SOURCE.replace("return 2", "return 9"))
        state = SolverState.from_bytes(blob)
        with pytest.raises(SolverStateError, match="monotone"):
            SkipFlowAnalysis(edited, state=state).run()

    def test_corrupt_blobs_are_refused(self):
        with pytest.raises(SolverStateError):
            SolverState.from_bytes(b"not a snapshot")

    def test_to_bytes_stamps_the_snapshot_not_the_live_state(self):
        program = compile_source(SMALL_SOURCE)
        result = SkipFlowAnalysis(program).run()
        state = result.solver_state
        blob = state.to_bytes(program)
        # The live chain stays unstamped (no fingerprint re-validation cost
        # on its later warm solves); the persisted snapshot carries it.
        assert state.fingerprint is None
        assert SolverState.from_bytes(blob).fingerprint is not None


class TestWarmVsColdEquivalence:
    """The satellite contract: warm == cold under every policy combination."""

    @pytest.mark.parametrize("scheduling", available_scheduling_policies())
    @pytest.mark.parametrize("saturation,threshold", SATURATIONS)
    def test_edit_sequence_reaches_the_cold_fixpoint(self, scheduling,
                                                     saturation, threshold):
        """Warm == cold for every combination, with one honest caveat.

        Reachability and call edges must agree everywhere.  Value states
        must agree exactly too — except on *saturated* flows under
        ``declared-type``: its sentinel does not dominate the unfiltered
        receiver sets that ``this`` parameters receive, so a saturated
        flow's state keeps whatever arrived before the collapse, and a warm
        chain (which collapsed before some edit's types even existed) can
        legitimately hold less residue than a cold solve.  Both are sound
        over-approximations above the same sentinel; for those flows the
        test checks the saturation verdict instead of the residue.
        """
        config = config_for(scheduling, saturation, threshold)
        program = generate_benchmark(WIDE_SPEC)
        script = default_edit_script(WIDE_SPEC, steps=3)
        chain = SkipFlowAnalysis(program, config).run().solver_state
        for step in script.steps:
            delta = build_edit_delta(WIDE_SPEC, step)
            delta.apply_to(program, require_monotone=True)
            warm = SkipFlowAnalysis(program, config, state=chain).run()
            chain = warm.solver_state
        cold = SkipFlowAnalysis(program, config).run()
        assert warm.reachable_methods == cold.reachable_methods
        assert sorted(warm.call_edges()) == sorted(cold.call_edges())
        if saturation == "declared-type":
            self._assert_states_match_modulo_residue(warm, cold)
        else:
            assert fixpoint_signature(warm) == fixpoint_signature(cold)

    @staticmethod
    def _assert_states_match_modulo_residue(warm, cold):
        """Exact state equality off the saturated flows; verdicts on them."""
        warm_graphs, cold_graphs = warm.pvpg.methods, cold.pvpg.methods
        assert set(warm_graphs) == set(cold_graphs)
        for name in warm_graphs:
            pairs = list(zip(warm_graphs[name].flows, cold_graphs[name].flows))
            assert len(warm_graphs[name].flows) == len(cold_graphs[name].flows)
            for flow_warm, flow_cold in pairs:
                assert flow_warm.label == flow_cold.label
                assert flow_warm.saturated == flow_cold.saturated
                if not flow_warm.saturated:
                    assert flow_warm.state == flow_cold.state, (
                        f"{name}::{flow_warm.label}")
        for field_name, flow_warm in warm.pvpg.field_flows.items():
            flow_cold = cold.pvpg.field_flows[field_name]
            assert flow_warm.saturated == flow_cold.saturated
            if not flow_warm.saturated:
                assert flow_warm.state == flow_cold.state, field_name

    def test_single_method_edit_is_much_cheaper_warm(self):
        program = generate_benchmark(WIDE_SPEC)
        config = AnalysisConfig.skipflow()
        script = default_edit_script(WIDE_SPEC, steps=1)
        chain = SkipFlowAnalysis(program, config).run().solver_state
        build_edit_delta(WIDE_SPEC, script.steps[0]).apply_to(
            program, require_monotone=True)
        before = chain.counters()
        warm = SkipFlowAnalysis(program, config, state=chain).run()
        cold = SkipFlowAnalysis(program, config).run()
        warm_steps = warm.steps - before["steps"]
        assert warm.reachable_methods == cold.reachable_methods
        # The acceptance bar is < 25% on the largest spec; this small spec
        # has less to save, so the bound here is looser but still strict.
        assert warm_steps < cold.steps / 2

    def test_new_roots_widen_old_conservative_seeds(self):
        """A new subtype of a root parameter's declared type must show up.

        Root parameters are seeded with every instantiable subtype of their
        declared type; a monotone delta can add such a subtype, so the
        resume path has to re-play the seed or the warm fixpoint would miss
        types the cold one sees.
        """
        source = """
class Plugin { void start() { } }
class Host {
    void boot(Plugin plugin) { plugin.start(); }
}
"""
        program = compile_source(source)
        roots = ["Host.boot"]
        cold_before = SkipFlowAnalysis(program).run(roots)
        state = cold_before.solver_state
        delta = ProgramDelta()
        delta.declare_class("TurboPlugin", superclass="Plugin")
        mb = delta.method("TurboPlugin", "start")
        mb.return_void()
        delta.finish_method(mb)
        delta.apply_to(program, require_monotone=True)
        warm = SkipFlowAnalysis(program, state=state).run(roots)
        cold = SkipFlowAnalysis(program).run(roots)
        assert warm.reachable_methods == cold.reachable_methods
        assert "TurboPlugin.start" in warm.reachable_methods
        assert fixpoint_signature(warm) == fixpoint_signature(cold)

    def test_resumed_counters_are_cumulative(self):
        program = generate_benchmark(WIDE_SPEC)
        config = AnalysisConfig.skipflow()
        base = SkipFlowAnalysis(program, config).run()
        build_edit_delta(WIDE_SPEC, default_edit_script(WIDE_SPEC, 1).steps[0]
                         ).apply_to(program, require_monotone=True)
        warm = SkipFlowAnalysis(program, config,
                                state=base.solver_state).run()
        assert warm.steps > base.steps
        assert warm.solver_state.solve_count == 2
