"""The declared-type saturation sentinel: narrower top, still sound."""

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel.saturation import DeclaredTypeSaturation
from repro.core.solver import SkipFlowSolver
from repro.ir.builder import ProgramBuilder
from repro.ir.types import NULL_TYPE_NAME
from repro.workloads.generator import BenchmarkSpec, HierarchySpec, generate_benchmark
from repro.workloads.patterns import add_wide_hierarchy_module


def _hierarchy_program(depth=2, fanout=4, call_sites=3):
    pb = ProgramBuilder()
    handle = add_wide_hierarchy_module(pb, "Demo", depth=depth, fanout=fanout,
                                       call_sites=call_sites, guarded_methods=8)
    pb.declare_class("Main")
    mb = pb.method("Main", "main", is_static=True)
    mb.invoke_static(*handle.driver.split("."))
    mb.return_void()
    pb.finish_method(mb)
    pb.add_entry_point("Main.main")
    return pb.build(), handle


def _composed_spec():
    return BenchmarkSpec(
        name="sat-composed", suite="test", core_methods=20, guarded_modules=(),
        hierarchies=(HierarchySpec(depth=1, fanout=12, call_sites=3),
                     HierarchySpec(depth=1, fanout=10, call_sites=3)),
        compose_hierarchies=True)


class TestDeclaredTypeSentinel:
    def test_field_flow_saturates_within_its_declared_subtree(self):
        """The registry field (declared ``<root>``) must not pick up types
        outside the hierarchy, unlike the closed-world top."""
        program, handle = _hierarchy_program()
        config = AnalysisConfig.skipflow().with_saturation_policy(
            "declared-type", 4)
        solver = SkipFlowSolver(program, config)
        solver.solve()
        assert solver.saturated_flows > 0
        field_flow = solver.pvpg.field_flows[
            f"{handle.driver.split('.')[0]}.current"]
        assert field_flow.saturated
        allowed = set(program.hierarchy.instantiable_subtypes(
            handle.root_class))
        allowed.add(NULL_TYPE_NAME)
        assert set(field_flow.state.reference_types) <= allowed
        # The closed-world sentinel is strictly wider on the same flow.
        closed = SkipFlowSolver(
            program, AnalysisConfig.skipflow().with_saturation_threshold(4))
        closed.solve()
        closed_field = closed.pvpg.field_flows[
            f"{handle.driver.split('.')[0]}.current"]
        assert (set(field_flow.state.reference_types)
                < set(closed_field.state.reference_types))

    def test_sound_superset_of_exact(self):
        program, handle = _hierarchy_program()
        exact = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
        saturated = SkipFlowAnalysis(
            _hierarchy_program()[0],
            AnalysisConfig.skipflow().with_saturation_policy(
                "declared-type", 4)).run()
        assert exact.reachable_methods <= saturated.reachable_methods
        # The rare-type guard still re-inflates: Rare is a declared subtype
        # of the saturating field's declared type, so no sentinel that
        # respects declarations can discharge the guard.
        assert saturated.is_method_reachable(handle.payload_entry)

    def test_never_coarser_than_closed_world(self):
        for make_program in (lambda: _hierarchy_program()[0],
                             lambda: generate_benchmark(_composed_spec())):
            declared = SkipFlowAnalysis(
                make_program(),
                AnalysisConfig.skipflow().with_saturation_policy(
                    "declared-type", 8)).run()
            closed = SkipFlowAnalysis(
                make_program(),
                AnalysisConfig.skipflow().with_saturation_policy(
                    "closed-world", 8)).run()
            assert declared.reachable_methods <= closed.reachable_methods

    def test_strictly_more_precise_on_composed_hierarchies(self):
        """Interleaved hierarchies are where the declared subtree pays off:
        a saturated registry field stops dragging in the payload/core types
        the closed-world top contains."""
        declared = SkipFlowAnalysis(
            generate_benchmark(_composed_spec()),
            AnalysisConfig.skipflow().with_saturation_policy(
                "declared-type", 8)).run()
        closed = SkipFlowAnalysis(
            generate_benchmark(_composed_spec()),
            AnalysisConfig.skipflow().with_saturation_policy(
                "closed-world", 8)).run()
        assert (declared.reachable_method_count
                < closed.reachable_method_count)

    def test_declared_type_resolution(self):
        program, handle = _hierarchy_program()
        policy = DeclaredTypeSaturation(program.hierarchy, threshold=4)
        solver = SkipFlowSolver(program, AnalysisConfig.skipflow())
        solver.solve()
        registry = handle.driver.split(".")[0]
        field_flow = solver.pvpg.field_flows[f"{registry}.current"]
        assert policy.declared_reference_type(field_flow) == handle.root_class
        # A load flow collapses to the union of every same-named field
        # declaration's top — here "current" is declared once, on the root.
        assert policy.field_declared_types("current") == (handle.root_class,)
        dispatch = solver.pvpg.method_graph(f"{registry}.dispatch0")
        load = next(f for f in dispatch.flows
                    if f.kind.value == "load_field")
        allowed = set(program.hierarchy.instantiable_subtypes(
            handle.root_class))
        assert set(policy._sentinel(load).reference_types) == allowed

    def test_field_top_is_receiver_independent_and_unions_same_names(self):
        """Two unrelated classes declaring a same-named field: the load/store
        sentinel must cover both declarations (which declaration an access
        resolves to depends on receiver types that keep growing after the
        collapse), so it is the union of both subtrees."""
        pb = ProgramBuilder()
        pb.declare_class("ARoot")
        pb.declare_class("ALeaf", superclass="ARoot")
        pb.declare_class("BRoot")
        pb.declare_class("BLeaf", superclass="BRoot")
        pb.declare_class("HolderA")
        pb.declare_field("HolderA", "slot", "ARoot")
        pb.declare_class("HolderB")
        pb.declare_field("HolderB", "slot", "BRoot")
        pb.declare_class("Main")
        mb = pb.method("Main", "main", is_static=True)
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        program = pb.build()
        policy = DeclaredTypeSaturation(program.hierarchy, threshold=1)
        assert policy.field_declared_types("slot") == ("ARoot", "BRoot")
        top = policy._field_top("slot")
        assert set(top.reference_types) == {"ARoot", "ALeaf", "BRoot", "BLeaf"}

    def test_generous_threshold_stays_exact(self):
        program, _ = _hierarchy_program(depth=1, fanout=4)
        exact = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
        high = SkipFlowAnalysis(
            _hierarchy_program(depth=1, fanout=4)[0],
            AnalysisConfig.skipflow().with_saturation_policy(
                "declared-type", 1000)).run()
        assert high.reachable_methods == exact.reachable_methods
        assert high.stats.saturated_flows == 0
