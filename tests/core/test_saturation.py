"""The saturation cutoff: off by default (seed-identical), sound when on."""

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.lang import compile_source

#: The quickstart example (examples/quickstart.py): a telemetry feature
#: guarded by a config method returning the constant ``false``.
QUICKSTART_SOURCE = """
class Config {
    boolean isTelemetryEnabled() {
        return false;
    }
}

class TelemetryService {
    void start() {
        MetricsLibrary.initialize();
    }
}

class MetricsLibrary {
    static void initialize() { MetricsLibrary.connect(); }
    static void connect() { }
}

class Application {
    void run(Config config) {
        if (config.isTelemetryEnabled()) {
            TelemetryService telemetry = new TelemetryService();
            telemetry.start();
        }
        this.serveRequests();
    }

    void serveRequests() { }
}

class Main {
    static void main() {
        Application app = new Application();
        app.run(new Config());
    }
}
"""

#: A megamorphic call site: ten receiver types flow into one parameter.
_IMPL_COUNT = 10
MEGAMORPHIC_SOURCE = (
    "class Base { void visit() { } }\n"
    + "".join(f"class Impl{i} extends Base {{ void visit() {{ }} }}\n"
              for i in range(_IMPL_COUNT))
    + "class Sink { void accept(Base b) { b.visit(); } }\n"
    + "class Main { static void main() {\n"
    + "    Sink s = new Sink();\n"
    + "".join(f"    s.accept(new Impl{i}());\n" for i in range(_IMPL_COUNT))
    + "} }\n"
)


class TestSaturationOff:
    """With the cutoff disabled (the default), results equal the seed solver."""

    def test_quickstart_matches_seed_counts(self):
        program = compile_source(QUICKSTART_SOURCE)
        baseline = SkipFlowAnalysis(program, AnalysisConfig.baseline_pta()).run()
        skipflow = SkipFlowAnalysis(
            compile_source(QUICKSTART_SOURCE), AnalysisConfig.skipflow()).run()
        # The numbers the seed prints for examples/quickstart.py.
        assert baseline.reachable_method_count == 7
        assert skipflow.reachable_method_count == 4
        assert skipflow.is_method_reachable("Application.serveRequests")
        assert not skipflow.is_method_reachable("TelemetryService.start")
        assert not skipflow.is_method_reachable("MetricsLibrary.initialize")
        assert skipflow.return_state("Config.isTelemetryEnabled").constant_value == 0

    def test_default_config_never_saturates(self):
        program = compile_source(MEGAMORPHIC_SOURCE)
        result = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
        assert result.stats is not None
        assert result.stats.saturated_flows == 0
        assert result.stats.joins > 0 and result.stats.transfers > 0
        assert result.stats.steps == result.steps

    def test_threshold_is_part_of_config_identity(self):
        exact = AnalysisConfig.skipflow()
        cut = exact.with_saturation_threshold(4)
        assert exact.saturation_threshold is None
        assert cut.saturation_threshold == 4
        assert exact != cut


class TestSaturationOn:
    def test_megamorphic_flow_saturates(self):
        program = compile_source(MEGAMORPHIC_SOURCE)
        config = AnalysisConfig.skipflow().with_saturation_threshold(3)
        result = SkipFlowAnalysis(program, config).run()
        assert result.stats.saturated_flows > 0

    def test_saturated_result_is_sound_superset(self):
        exact = SkipFlowAnalysis(
            compile_source(MEGAMORPHIC_SOURCE), AnalysisConfig.skipflow()).run()
        saturated = SkipFlowAnalysis(
            compile_source(MEGAMORPHIC_SOURCE),
            AnalysisConfig.skipflow().with_saturation_threshold(3)).run()
        assert exact.reachable_methods <= saturated.reachable_methods

    def test_quickstart_unaffected_by_generous_threshold(self):
        # A threshold larger than any type set in the program must not
        # change anything: the cutoff never fires.
        config = AnalysisConfig.skipflow().with_saturation_threshold(1000)
        result = SkipFlowAnalysis(compile_source(QUICKSTART_SOURCE), config).run()
        assert result.reachable_method_count == 4
        assert result.stats.saturated_flows == 0
