"""Unit tests for the solver: fields, invokes, phis, predicates, stubs, loops."""

import pytest

from repro import AnalysisConfig, SkipFlowAnalysis
from repro.ir.builder import ProgramBuilder
from repro.lattice.value_state import ValueState


def analyze(program, config=None, roots=None):
    return SkipFlowAnalysis(program, config or AnalysisConfig.skipflow()).run(roots)


class TestFieldFlows:
    def _program(self):
        pb = ProgramBuilder()
        pb.declare_class("Box")
        pb.declare_class("Item")
        pb.declare_class("Main")
        pb.declare_field("Box", "content", "Item")

        mb = pb.method("Box", "get", return_type="Item")
        value = mb.load_field(mb.receiver, "content", "Item")
        mb.return_(value)
        pb.finish_method(mb)

        mb = pb.method("Main", "main", is_static=True)
        box = mb.assign_new("Box")
        item = mb.assign_new("Item")
        mb.store_field(box, "content", item)
        mb.invoke_virtual(box, "get", result_type="Item")
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        return pb.build()

    def test_store_reaches_load_through_field(self):
        result = analyze(self._program())
        assert result.field_state("Box.content") == ValueState.of_type("Item")
        assert result.return_state("Box.get") == ValueState.of_type("Item")

    def test_unwritten_field_stays_empty(self):
        program = self._program()
        # Remove the store by rebuilding main without it.
        result = analyze(program)
        assert result.field_state("Box.missing").is_empty


class TestVirtualDispatch:
    def _program(self, instantiate=("Dog", "Cat")):
        pb = ProgramBuilder()
        pb.declare_class("Animal")
        pb.declare_class("Dog", superclass="Animal")
        pb.declare_class("Cat", superclass="Animal")
        pb.declare_class("Main")

        for cls, sound in (("Animal", 0), ("Dog", 1), ("Cat", 2)):
            mb = pb.method(cls, "speak", return_type="int")
            value = mb.assign_int(sound)
            mb.return_(value)
            pb.finish_method(mb)

        mb = pb.method("Main", "main", is_static=True)
        last = None
        for cls in instantiate:
            last = mb.assign_new(cls)
        # A single call site whose receiver joins all instantiated animals.
        if len(instantiate) > 1:
            first = mb.assign_new(instantiate[0])
            mb.if_null(first, "a", "b")
            mb.label("a")
            x = mb.assign_new(instantiate[0])
            mb.jump("m", [x])
            mb.label("b")
            y = mb.assign_new(instantiate[1])
            mb.jump("m", [y])
            receiver = mb.merge("m", ["animal"])[0]
        else:
            receiver = last
        mb.invoke_virtual(receiver, "speak", result_type="int")
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        return pb.build()

    def test_monomorphic_call_resolves_single_target(self):
        result = analyze(self._program(instantiate=("Dog",)))
        assert result.is_method_reachable("Dog.speak")
        assert not result.is_method_reachable("Cat.speak")
        assert not result.is_method_reachable("Animal.speak")

    def test_polymorphic_call_resolves_both_targets(self):
        result = analyze(self._program(instantiate=("Dog", "Cat")), AnalysisConfig.baseline_pta())
        assert result.is_method_reachable("Dog.speak")
        assert result.is_method_reachable("Cat.speak")

    def test_inherited_method_resolution(self):
        pb = ProgramBuilder()
        pb.declare_class("Base")
        pb.declare_class("Derived", superclass="Base")
        pb.declare_class("Main")
        mb = pb.method("Base", "hello")
        mb.return_void()
        pb.finish_method(mb)
        mb = pb.method("Main", "main", is_static=True)
        derived = mb.assign_new("Derived")
        mb.invoke_virtual(derived, "hello")
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        result = analyze(pb.build())
        assert result.is_method_reachable("Base.hello")

    def test_call_on_null_only_receiver_links_nothing(self):
        pb = ProgramBuilder()
        pb.declare_class("Service")
        pb.declare_class("Main")
        mb = pb.method("Service", "go")
        mb.return_void()
        pb.finish_method(mb)
        mb = pb.method("Main", "main", is_static=True)
        nothing = mb.assign_null()
        mb.invoke_virtual(nothing, "go")
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        result = analyze(pb.build())
        assert not result.is_method_reachable("Service.go")


class TestStaticCallsAndStubs:
    def test_static_call_links_declared_method(self):
        pb = ProgramBuilder()
        pb.declare_class("Util")
        pb.declare_class("Main")
        mb = pb.method("Util", "helper", is_static=True)
        mb.return_void()
        pb.finish_method(mb)
        mb = pb.method("Main", "main", is_static=True)
        mb.invoke_static("Util", "helper")
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        result = analyze(pb.build())
        assert result.is_method_reachable("Util.helper")

    def test_call_to_bodyless_method_is_a_stub(self):
        pb = ProgramBuilder()
        pb.declare_class("Native")
        pb.declare_class("Main")
        # Declare a signature without a body (a "native" method).
        from repro.ir.types import MethodSignature
        pb.hierarchy.get("Native").declare_method(
            MethodSignature("Native", "now", return_type="int"))
        mb = pb.method("Main", "main", is_static=True)
        native = mb.assign_new("Native")
        result_value = mb.invoke_virtual(native, "now", result_type="int")
        zero = mb.assign_int(0)
        mb.if_eq(result_value, zero, "z", "nz")
        mb.label("z")
        mb.jump("end", [])
        mb.label("nz")
        mb.jump("end", [])
        mb.merge("end", [])
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        result = analyze(pb.build())
        assert "Native.now" in result.stub_methods
        assert not result.is_method_reachable("Native.now")

    def test_static_call_to_unknown_class_recorded_as_stub(self):
        pb = ProgramBuilder()
        pb.declare_class("Main")
        mb = pb.method("Main", "main", is_static=True)
        mb.invoke_static("System", "currentTimeMillis", result_type="int")
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        result = analyze(pb.build())
        assert "System.currentTimeMillis" in result.stub_methods


class TestPredicatesAndPrimitives:
    def _flag_program(self, flag_value):
        pb = ProgramBuilder()
        pb.declare_class("Main")
        pb.declare_class("Feature")
        mb = pb.method("Feature", "on")
        mb.return_void()
        pb.finish_method(mb)
        mb = pb.method("Feature", "off")
        mb.return_void()
        pb.finish_method(mb)
        mb = pb.method("Main", "main", is_static=True)
        flag = mb.assign_int(flag_value)
        one = mb.assign_int(1)
        feature = mb.assign_new("Feature")
        mb.if_eq(flag, one, "on", "off")
        mb.label("on")
        mb.invoke_virtual(feature, "on")
        mb.jump("end", [])
        mb.label("off")
        mb.invoke_virtual(feature, "off")
        mb.jump("end", [])
        mb.merge("end", [])
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        return pb.build()

    def test_constant_false_prunes_then_branch(self):
        result = analyze(self._flag_program(0))
        assert not result.is_method_reachable("Feature.on")
        assert result.is_method_reachable("Feature.off")

    def test_constant_true_prunes_else_branch(self):
        result = analyze(self._flag_program(1))
        assert result.is_method_reachable("Feature.on")
        assert not result.is_method_reachable("Feature.off")

    def test_baseline_keeps_both_branches(self):
        result = analyze(self._flag_program(0), AnalysisConfig.baseline_pta())
        assert result.is_method_reachable("Feature.on")
        assert result.is_method_reachable("Feature.off")

    def test_primitive_comparison_prunes_impossible_range(self):
        pb = ProgramBuilder()
        pb.declare_class("Main")
        pb.declare_class("Big")
        pb.declare_class("Small")
        for cls in ("Big", "Small"):
            mb = pb.method(cls, "handle")
            mb.return_void()
            pb.finish_method(mb)
        mb = pb.method("Main", "main", is_static=True)
        x = mb.assign_int(42)
        ten = mb.assign_int(10)
        big = mb.assign_new("Big")
        small = mb.assign_new("Small")
        mb.if_lt(x, ten, "lt", "ge")
        mb.label("lt")
        mb.invoke_virtual(small, "handle")
        mb.jump("end", [])
        mb.label("ge")
        mb.invoke_virtual(big, "handle")
        mb.jump("end", [])
        mb.merge("end", [])
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        result = analyze(pb.build())
        # 42 < 10 is false: only the else branch is live.
        assert not result.is_method_reachable("Small.handle")
        assert result.is_method_reachable("Big.handle")

    def test_never_returning_callee_prunes_continuation(self):
        pb = ProgramBuilder()
        pb.declare_class("Main")
        pb.declare_class("Guard")
        pb.declare_class("After")
        mb = pb.method("Guard", "spin")
        mb.jump("loop", [])
        mb.merge("loop", [])
        mb.jump("loop", [])
        pb.finish_method(mb)
        mb = pb.method("After", "run")
        mb.return_void()
        pb.finish_method(mb)
        mb = pb.method("Main", "main", is_static=True)
        guard = mb.assign_new("Guard")
        after = mb.assign_new("After")
        mb.invoke_virtual(guard, "spin")
        mb.invoke_virtual(after, "run")
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")

        skipflow = analyze(pb.build())
        assert skipflow.is_method_reachable("Guard.spin")
        assert not skipflow.is_method_reachable("After.run")

    def test_return_state_of_constant_method(self, virtual_threads_program):
        result = analyze(virtual_threads_program)
        assert result.return_state("Thread.isVirtual").constant_value == 0

    def test_parameter_state_query(self, virtual_threads_program):
        result = analyze(virtual_threads_program)
        state = result.parameter_state("SharedThreadContainer.onExit", 1)
        assert state.contains_type("Thread")

    def test_unreachable_method_query_raises(self, virtual_threads_program):
        result = analyze(virtual_threads_program)
        with pytest.raises(KeyError):
            result.return_state("ThreadSet.remove")


class TestLoops:
    def test_loop_phi_joins_initial_and_updated_values(self):
        pb = ProgramBuilder()
        pb.declare_class("Main")
        mb = pb.method("Main", "count", params=["int"], return_type="int", is_static=True)
        n = mb.param(0)
        zero = mb.assign_int(0)
        mb.jump("head", [zero])
        i = mb.merge("head", ["i"])[0]
        mb.if_lt(i, n, "body", "exit")
        mb.label("body")
        step = mb.assign_any()
        mb.jump("head", [step])
        mb.label("exit")
        mb.return_(i)
        pb.finish_method(mb)

        mb = pb.method("Main", "main", is_static=True)
        bound = mb.assign_int(5)
        mb.invoke_static("Main", "count", [bound], result_type="int")
        mb.return_void()
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")

        result = analyze(pb.build())
        # The loop variable joins the constant 0 with Any from the body.
        assert result.return_state("Main.count").has_any

    def test_solver_terminates_on_self_loop(self):
        pb = ProgramBuilder()
        pb.declare_class("Main")
        mb = pb.method("Main", "main", is_static=True)
        mb.jump("loop", [])
        mb.merge("loop", [])
        mb.jump("loop", [])
        pb.finish_method(mb)
        pb.add_entry_point("Main.main")
        result = analyze(pb.build())
        assert result.reachable_method_count == 1


class TestConfigurations:
    def test_analysis_without_roots_raises(self):
        pb = ProgramBuilder()
        pb.declare_class("Main")
        mb = pb.method("Main", "main", is_static=True)
        mb.return_void()
        pb.finish_method(mb)
        with pytest.raises(ValueError):
            analyze(pb.build())

    def test_explicit_roots_override_entry_points(self, virtual_threads_program):
        result = analyze(virtual_threads_program, roots=["Thread.isVirtual"])
        assert result.is_method_reachable("Thread.isVirtual")
        assert not result.is_method_reachable("Main.main")

    def test_root_reference_parameters_seeded_conservatively(self, virtual_threads_program):
        result = analyze(virtual_threads_program, roots=["SharedThreadContainer.onExit"])
        state = result.parameter_state("SharedThreadContainer.onExit", 1)
        # Any instantiable Thread subtype plus null.
        assert state.contains_type("Thread")
        assert state.contains_type("VirtualThread")
        assert state.contains_null

    def test_config_names(self):
        assert AnalysisConfig.skipflow().name == "SkipFlow"
        assert AnalysisConfig.baseline_pta().name == "PTA"
        assert AnalysisConfig.skipflow().with_name("custom").name == "custom"

    def test_baseline_disables_predicates_and_primitives(self):
        config = AnalysisConfig.baseline_pta()
        assert not config.use_predicates
        assert not config.track_primitives
        assert config.filter_type_checks
        assert not config.filter_comparisons

    def test_steps_counter_positive(self, virtual_threads_program):
        result = analyze(virtual_threads_program)
        assert result.steps > 0
        assert result.analysis_time_seconds >= 0.0
