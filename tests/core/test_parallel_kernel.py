"""The parallel kernel's contract: bit-identical results, honest fallback.

Thread-mode workers run the full channel protocol on one core, so the
scheduling x saturation grid here exercises every message type and the
round/termination logic without needing a many-core host; one smoke test
covers the shared-memory process tier end to end.
"""

from __future__ import annotations

import os

import pytest

from repro.core.analysis import KERNELS, AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel import available_scheduling_policies
from repro.core.kernel.arena_kernel import ArenaKernelSolver
from repro.core.kernel.parallel_kernel import (
    ENV_CORE_BUDGET,
    ParallelKernelSolver,
    ParallelKernelUnsupported,
    core_budget,
    partition_bounds,
)
from repro.ir.arena import freeze, open_program
from repro.workloads.generator import generate_benchmark
from repro.workloads.suites import dacapo_suite, suite_by_name

#: Parallel-supported saturations (``declared-type``'s sentinel is
#: history-dependent and must fall back instead — tested separately).
SATURATIONS = ("off", "closed-world", "allocated-type",
               "allocated-type-reachable")


def _workload(suite, name):
    for spec in suite:
        if spec.name == name:
            return spec
    raise AssertionError(f"no spec named {name!r}")


WORKLOADS = {
    "dacapo-pmd": _workload(dacapo_suite(), "pmd"),
    "wide-flat-64": _workload(suite_by_name("WideHierarchy"),
                              "wide-flat-64"),
    "composed-duo-112": _workload(suite_by_name("WideHierarchy"),
                                  "composed-duo-112"),
}

_PROGRAMS = {}


def _program(key):
    if key not in _PROGRAMS:
        _PROGRAMS[key] = generate_benchmark(WORKLOADS[key])
    return _PROGRAMS[key]


def _canonical(result):
    # No step/join counters here: the parallel kernel's counters are sums
    # over partition workers and partitioning-dependent by design.  Its
    # identity contract is outputs and per-flow states.
    return (frozenset(result.reachable_methods),
            sorted(result.call_edges()),
            frozenset(result.stub_methods))


def _parallel_config(config, partitions=3):
    return config.with_kernel("parallel").with_partitions(partitions)


class TestBitIdenticalGrid:
    @pytest.mark.parametrize("scheduling", available_scheduling_policies())
    @pytest.mark.parametrize("saturation", SATURATIONS)
    def test_full_grid_on_wide(self, scheduling, saturation):
        config = AnalysisConfig.skipflow().with_scheduling(scheduling)
        if saturation != "off":
            config = config.with_saturation_policy(saturation, 4)
        reference = SkipFlowAnalysis(_program("wide-flat-64"), config).run()
        parallel = SkipFlowAnalysis(
            _program("wide-flat-64"), _parallel_config(config)).run()
        assert isinstance(parallel.kernel_backend, ParallelKernelSolver)
        assert _canonical(parallel) == _canonical(reference)

    @pytest.mark.parametrize("workload", ["dacapo-pmd", "composed-duo-112"])
    @pytest.mark.parametrize("scheduling", available_scheduling_policies())
    def test_schedulings_on_tier1_and_composed(self, workload, scheduling):
        config = AnalysisConfig.skipflow().with_scheduling(scheduling)
        reference = SkipFlowAnalysis(_program(workload), config).run()
        parallel = SkipFlowAnalysis(
            _program(workload), _parallel_config(config)).run()
        assert isinstance(parallel.kernel_backend, ParallelKernelSolver)
        assert _canonical(parallel) == _canonical(reference)

    def test_baseline_pta_is_bit_identical_too(self):
        config = AnalysisConfig.baseline_pta()
        reference = SkipFlowAnalysis(_program("dacapo-pmd"), config).run()
        parallel = SkipFlowAnalysis(
            _program("dacapo-pmd"), _parallel_config(config)).run()
        assert _canonical(parallel) == _canonical(reference)

    def test_per_flow_states_match_the_serial_arena(self):
        """Beyond outputs: every cell of the flat tables is identical."""
        config = AnalysisConfig.skipflow()
        serial = SkipFlowAnalysis(
            _program("dacapo-pmd"),
            config.with_kernel("arena")).run().kernel_backend
        merged = SkipFlowAnalysis(
            _program("dacapo-pmd"),
            _parallel_config(config)).run().kernel_backend
        assert isinstance(serial, ArenaKernelSolver)
        assert isinstance(merged, ParallelKernelSolver)
        assert all(merged._st[i] == serial._st[i]
                   for i in range(len(serial._st)))
        assert all(merged._inp[i] == serial._inp[i]
                   for i in range(len(serial._inp)))
        assert bytes(merged._enabled) == bytes(serial._enabled)
        assert bytes(merged._saturated) == bytes(serial._saturated)

    def test_partition_count_does_not_change_results(self):
        config = AnalysisConfig.skipflow()
        reference = SkipFlowAnalysis(_program("composed-duo-112"),
                                     config).run()
        for partitions in (2, 3, 5):
            parallel = SkipFlowAnalysis(
                _program("composed-duo-112"),
                _parallel_config(config, partitions)).run()
            assert _canonical(parallel) == _canonical(reference)


class TestProcessMode:
    def test_process_smoke_is_bit_identical(self):
        """The shared-memory tier end to end (explicit mode, 2 workers)."""
        program = _program("dacapo-pmd")
        reference = SkipFlowAnalysis(program,
                                     AnalysisConfig.skipflow()).run()
        solver = ParallelKernelSolver(
            program, AnalysisConfig.skipflow().with_kernel("parallel"),
            partitions=2, mode="process")
        solver.solve(None)
        assert solver.worker_mode == "process"
        assert frozenset(solver.reachable) == frozenset(
            reference.reachable_methods)


class TestPartitionBounds:
    def test_bounds_are_method_aligned_and_cover_all_flows(self):
        arena = open_program(freeze(_program("dacapo-pmd"))).arena
        bounds = partition_bounds(arena, 3)
        assert bounds[0] == 0
        assert bounds[-1] == arena.num_flows
        assert bounds == sorted(set(bounds))
        starts = {int(arena.method_flow_lo[mid])
                  for mid in range(arena.num_methods)}
        for cut in bounds[1:-1]:
            assert cut in starts

    def test_more_partitions_than_methods_collapses(self):
        arena = open_program(freeze(_program("wide-flat-64"))).arena
        bounds = partition_bounds(arena, 10_000)
        # At most one range per method start, plus the field/pred_on
        # prelude partition 0 owns.
        assert len(bounds) - 1 <= arena.num_methods + 1

    def test_every_method_lands_in_exactly_one_range(self):
        arena = open_program(freeze(_program("composed-duo-112"))).arena
        bounds = partition_bounds(arena, 4)
        for mid in range(arena.num_methods):
            lo = int(arena.method_flow_lo[mid])
            hi = int(arena.method_flow_hi[mid])
            owners = {index for index in range(len(bounds) - 1)
                      if bounds[index] <= lo < bounds[index + 1]}
            assert len(owners) == 1
            (owner,) = owners
            assert hi <= bounds[owner + 1]


class TestUnsupportedAndFallback:
    def test_declared_type_falls_back_to_the_serial_arena(self):
        config = (AnalysisConfig.skipflow()
                  .with_saturation_policy("declared-type", 8))
        reference = SkipFlowAnalysis(_program("dacapo-pmd"), config).run()
        result = SkipFlowAnalysis(_program("dacapo-pmd"),
                                  _parallel_config(config)).run()
        backend = result.kernel_backend
        assert isinstance(backend, ArenaKernelSolver)
        assert not isinstance(backend, ParallelKernelSolver)
        assert _canonical(result) == _canonical(reference)

    def test_declared_type_raises_on_the_solver_directly(self):
        solver = ParallelKernelSolver(
            _program("dacapo-pmd"),
            AnalysisConfig.skipflow()
            .with_saturation_policy("declared-type", 8)
            .with_kernel("parallel"),
            partitions=2, mode="thread")
        with pytest.raises(ParallelKernelUnsupported):
            solver.solve(None)

    def test_fewer_than_two_partitions_is_unsupported(self):
        with pytest.raises(ParallelKernelUnsupported):
            ParallelKernelSolver(
                _program("dacapo-pmd"),
                AnalysisConfig.skipflow().with_kernel("parallel"),
                partitions=1)

    def test_state_resume_is_unsupported(self):
        from repro.core.kernel.arena_kernel import ArenaKernelUnsupported
        warm = SkipFlowAnalysis(_program("dacapo-pmd"),
                                AnalysisConfig.skipflow()).run()
        # The *base* exception, deliberately: no arena-family kernel can
        # resume, so the analysis layer must skip the serial-arena retry
        # and go straight to the object solver.
        with pytest.raises(ArenaKernelUnsupported):
            ParallelKernelSolver(
                _program("dacapo-pmd"),
                AnalysisConfig.skipflow().with_kernel("parallel"),
                partitions=2, state=warm.solver_state)

    def test_warm_resume_routes_to_the_object_solver(self):
        analysis = SkipFlowAnalysis(_program("dacapo-pmd"),
                                    _parallel_config(
                                        AnalysisConfig.skipflow()))
        cold = analysis.run()
        assert isinstance(cold.kernel_backend, ParallelKernelSolver)
        warm_analysis = SkipFlowAnalysis(
            _program("dacapo-pmd"),
            _parallel_config(AnalysisConfig.skipflow()),
            state=cold.solver_state)
        warm = warm_analysis.run()
        assert warm.kernel_backend is None  # the object solver ran
        assert _canonical(warm) == _canonical(cold)


class TestConfigPlumbing:
    def test_kernel_registry_lists_parallel(self):
        assert "parallel" in KERNELS
        assert AnalysisConfig.skipflow().kernel == "object"  # default

    def test_partitions_validation(self):
        with pytest.raises(ValueError):
            AnalysisConfig.skipflow().with_partitions(0)
        config = AnalysisConfig.skipflow().with_partitions(4)
        assert config.partitions == 4
        assert AnalysisConfig.skipflow().partitions is None

    def test_invalid_mode_is_rejected(self):
        with pytest.raises(ValueError):
            ParallelKernelSolver(
                _program("dacapo-pmd"),
                AnalysisConfig.skipflow().with_kernel("parallel"),
                partitions=2, mode="fibers")

    def test_core_budget_reads_the_engine_export(self, monkeypatch):
        monkeypatch.setenv(ENV_CORE_BUDGET, "3")
        assert core_budget() == 3
        monkeypatch.setenv(ENV_CORE_BUDGET, "not-a-number")
        assert core_budget() == (os.cpu_count() or 1)
        monkeypatch.delenv(ENV_CORE_BUDGET)
        assert core_budget() == (os.cpu_count() or 1)
