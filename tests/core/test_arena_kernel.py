"""The arena propagation kernel: bit-identical to the object kernel.

``kernel="arena"`` solves on the flat integer-id tables of
:mod:`repro.ir.arena` instead of the object-graph PVPG; its contract is
*exact* equality of every canonical output — reachable sets, call edges,
step/join/transfer counters, saturated-flow counts, and the image layer's
metrics and per-method dead-code reports — across the full scheduling ×
saturation grid, on generated benchmarks from the paper (tier-1), wide, and
composed suites alike.  The grid here is the in-repo anchor for the CI
gates (solver-steps baseline, fuzz ``kernel-divergence`` invariant).
"""

from dataclasses import replace

import pytest

from repro.core.analysis import KERNELS, AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel import (
    available_saturation_policies,
    available_scheduling_policies,
)
from repro.image.builder import NativeImageBuilder
from repro.ir.arena import freeze, open_program
from repro.workloads.generator import generate_benchmark
from repro.workloads.suites import dacapo_suite, suite_by_name


def _workload(suite, name):
    for spec in suite:
        if spec.name == name:
            return spec
    raise AssertionError(f"no spec named {name!r}")


#: One representative per suite family: paper-shaped (tier-1 sizes), wide
#: hierarchy, and composed multi-hierarchy.
WORKLOADS = {
    "dacapo-pmd": _workload(dacapo_suite(), "pmd"),
    "wide-flat-64": _workload(suite_by_name("WideHierarchy"), "wide-flat-64"),
    "composed-duo-112": _workload(suite_by_name("WideHierarchy"),
                                  "composed-duo-112"),
}

_PROGRAMS = {}


def _program(key):
    if key not in _PROGRAMS:
        _PROGRAMS[key] = generate_benchmark(WORKLOADS[key])
    return _PROGRAMS[key]


def _canonical(result):
    return (frozenset(result.reachable_methods),
            sorted(result.call_edges()),
            result.steps,
            result.stats.joins,
            result.stats.transfers,
            result.stats.saturated_flows)


def _solve(key, config):
    return SkipFlowAnalysis(_program(key), config).run()


class TestBitIdenticalGrid:
    @pytest.mark.parametrize("scheduling", available_scheduling_policies())
    @pytest.mark.parametrize("saturation", available_saturation_policies())
    def test_full_grid_on_wide(self, scheduling, saturation):
        config = AnalysisConfig.skipflow().with_scheduling(scheduling)
        if saturation != "off":
            config = config.with_saturation_policy(saturation, 4)
        reference = _solve("wide-flat-64", config)
        arena = _solve("wide-flat-64", config.with_kernel("arena"))
        assert _canonical(arena) == _canonical(reference)

    @pytest.mark.parametrize("workload", ["dacapo-pmd", "composed-duo-112"])
    @pytest.mark.parametrize("scheduling", available_scheduling_policies())
    def test_schedulings_on_tier1_and_composed(self, workload, scheduling):
        config = AnalysisConfig.skipflow().with_scheduling(scheduling)
        reference = _solve(workload, config)
        arena = _solve(workload, config.with_kernel("arena"))
        assert _canonical(arena) == _canonical(reference)

    @pytest.mark.parametrize("workload", ["dacapo-pmd", "composed-duo-112"])
    @pytest.mark.parametrize("saturation", ["declared-type", "closed-world"])
    def test_saturations_on_tier1_and_composed(self, workload, saturation):
        config = (AnalysisConfig.skipflow()
                  .with_saturation_policy(saturation, 8))
        reference = _solve(workload, config)
        arena = _solve(workload, config.with_kernel("arena"))
        assert _canonical(arena) == _canonical(reference)

    def test_baseline_pta_is_bit_identical_too(self):
        config = AnalysisConfig.baseline_pta()
        reference = _solve("dacapo-pmd", config)
        arena = _solve("dacapo-pmd", config.with_kernel("arena"))
        assert _canonical(arena) == _canonical(reference)


class TestAttachedArenaInput:
    def test_solving_an_attached_arena_matches(self):
        """The zero-decode worker path: mmap-shaped input, same results."""
        program = _program("dacapo-pmd")
        attached = open_program(freeze(program))
        config = AnalysisConfig.skipflow().with_kernel("arena")
        reference = _solve("dacapo-pmd", AnalysisConfig.skipflow())
        arena = SkipFlowAnalysis(attached, config).run()
        assert _canonical(arena) == _canonical(reference)


class TestImageFastPath:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_image_reports_identical(self, workload):
        """The arena-native image counters equal the PVPG-walking ones."""
        config = AnalysisConfig.skipflow()
        reference = NativeImageBuilder(
            _program(workload), config,
            benchmark_name=workload).build()
        arena = NativeImageBuilder(
            _program(workload), config.with_kernel("arena"),
            benchmark_name=workload).build()
        assert (replace(arena.metrics, analysis_time_seconds=0.0)
                == replace(reference.metrics, analysis_time_seconds=0.0))
        assert arena.binary_size_bytes == reference.binary_size_bytes
        assert (sorted(arena.dead_code.methods)
                == sorted(reference.dead_code.methods))
        for name, dead in reference.dead_code.methods.items():
            assert arena.dead_code.methods[name] == dead


class TestLazyInflation:
    def test_pvpg_and_state_inflate_on_demand(self):
        config = AnalysisConfig.skipflow().with_kernel("arena")
        result = SkipFlowAnalysis(_program("wide-flat-64"), config).run()
        assert result.kernel_backend is not None
        # Inflation is lazy but complete: the inflated state matches the
        # object kernel's canonical outputs.
        reference = _solve("wide-flat-64", AnalysisConfig.skipflow())
        assert result.pvpg is not None
        assert (frozenset(result.reachable_methods)
                == frozenset(reference.reachable_methods))
        assert sorted(result.call_edges()) == sorted(reference.call_edges())
        assert result.solver_state.counters() == reference.solver_state.counters()

    def test_object_kernel_has_no_backend(self):
        result = _solve("wide-flat-64", AnalysisConfig.skipflow())
        assert result.kernel_backend is None


class TestFallbacks:
    def test_warm_resume_falls_back_to_the_object_solver(self):
        """The arena kernel refuses resumes; the run still succeeds warm.

        Resume requires the state's config (kernel field included), so the
        warm solve keeps ``kernel="arena"`` — and the engine routes it to
        the object solver anyway, because only cold solves qualify.
        """
        program = _program("wide-flat-64")
        config = AnalysisConfig.skipflow().with_kernel("arena")
        cold = SkipFlowAnalysis(program, config).run()
        assert cold.kernel_backend is not None
        resumed = SkipFlowAnalysis(
            program, config, state=cold.solver_state).run()
        assert resumed.kernel_backend is None  # object solver took it
        assert (frozenset(resumed.reachable_methods)
                == frozenset(cold.reachable_methods))

    def test_kernel_is_validated(self):
        with pytest.raises(ValueError):
            AnalysisConfig.skipflow().with_kernel("vectorized")
        assert set(KERNELS) == {"object", "arena", "parallel"}
