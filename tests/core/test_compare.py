"""Tests for the Compare function (Appendix C), including the paper's examples."""

from hypothesis import given, strategies as st

from repro.core.compare import compare_states
from repro.ir.instructions import CompareOp
from repro.lattice.value_state import ValueState


def types(*names):
    return ValueState.of_types(names)


class TestEmptyOperands:
    def test_empty_left(self):
        assert compare_states(CompareOp.EQ, ValueState.empty(), ValueState.of_int(5)).is_empty

    def test_empty_right(self):
        assert compare_states(CompareOp.LT, ValueState.of_int(5), ValueState.empty()).is_empty


class TestEqualityPaperExamples:
    def test_any_vs_constant(self):
        # Compare('=', {Any}, {5}) = {5}
        result = compare_states(CompareOp.EQ, ValueState.any_primitive(), ValueState.of_int(5))
        assert result.constant_value == 5

    def test_any_vs_any(self):
        # Compare('=', {Any}, {Any}) = {Any}
        result = compare_states(CompareOp.EQ, ValueState.any_primitive(),
                                ValueState.any_primitive())
        assert result.has_any

    def test_constant_vs_any(self):
        result = compare_states(CompareOp.EQ, ValueState.of_int(5), ValueState.any_primitive())
        assert result.constant_value == 5

    def test_type_intersection(self):
        # Compare('=', {A, B}, {B, C}) = {B}
        result = compare_states(CompareOp.EQ, types("A", "B"), types("B", "C"))
        assert result.types == frozenset({"B"})

    def test_equal_constants(self):
        assert compare_states(CompareOp.EQ, ValueState.of_int(3),
                              ValueState.of_int(3)).constant_value == 3

    def test_different_constants(self):
        assert compare_states(CompareOp.EQ, ValueState.of_int(3),
                              ValueState.of_int(5)).is_empty

    def test_null_check_intersection(self):
        result = compare_states(CompareOp.EQ, types("A", "null"), ValueState.null())
        assert result == ValueState.null()

    def test_null_check_on_non_null_value_is_empty(self):
        assert compare_states(CompareOp.EQ, types("A"), ValueState.null()).is_empty


class TestInequality:
    def test_singleton_difference_on_types(self):
        result = compare_states(CompareOp.NE, types("A", "null"), ValueState.null())
        assert result.types == frozenset({"A"})

    def test_equal_constants_filtered_out(self):
        # Compare('!=', {0}, {0}) = {}
        assert compare_states(CompareOp.NE, ValueState.of_int(0), ValueState.of_int(0)).is_empty

    def test_different_constants_kept(self):
        # Compare('!=', {5}, {3}) = {5}
        assert compare_states(CompareOp.NE, ValueState.of_int(5),
                              ValueState.of_int(3)).constant_value == 5

    def test_any_on_right_cannot_filter(self):
        left = ValueState.of_int(5)
        assert compare_states(CompareOp.NE, left, ValueState.any_primitive()) == left

    def test_any_on_left_survives(self):
        result = compare_states(CompareOp.NE, ValueState.any_primitive(), ValueState.of_int(0))
        assert result.has_any

    def test_non_singleton_right_operand_is_not_subtracted(self):
        # Soundness guard: x != y with y in {B, C} does not exclude B for x.
        left = types("A", "B")
        assert compare_states(CompareOp.NE, left, types("B", "C")) == left


class TestRelational:
    def test_holds(self):
        # Compare('<', {3}, {5}) = {3}
        assert compare_states(CompareOp.LT, ValueState.of_int(3),
                              ValueState.of_int(5)).constant_value == 3

    def test_fails(self):
        # Compare('<', {3}, {1}) = {}
        assert compare_states(CompareOp.LT, ValueState.of_int(3),
                              ValueState.of_int(1)).is_empty

    def test_less_equal(self):
        assert not compare_states(CompareOp.LE, ValueState.of_int(3),
                                  ValueState.of_int(3)).is_empty
        assert compare_states(CompareOp.GT, ValueState.of_int(3),
                              ValueState.of_int(3)).is_empty

    def test_greater_variants(self):
        assert compare_states(CompareOp.GE, ValueState.of_int(4),
                              ValueState.of_int(4)).constant_value == 4
        assert compare_states(CompareOp.GT, ValueState.of_int(5),
                              ValueState.of_int(4)).constant_value == 5

    def test_any_left_passes_through(self):
        result = compare_states(CompareOp.LT, ValueState.any_primitive(), ValueState.of_int(3))
        assert result.has_any

    def test_any_right_passes_through(self):
        left = ValueState.of_int(3)
        assert compare_states(CompareOp.LT, left, ValueState.any_primitive()) == left


_prim_states = st.sampled_from([
    ValueState.empty(), ValueState.of_int(0), ValueState.of_int(1), ValueState.of_int(5),
    ValueState.any_primitive(), ValueState.of_types(["A"]), ValueState.of_types(["A", "null"]),
    ValueState.null(),
])
_ops = st.sampled_from(list(CompareOp))


class TestCompareProperties:
    @given(_ops, _prim_states, _prim_states)
    def test_result_never_exceeds_left_unless_any(self, op, left, right):
        """Filtering never invents values: the result is below the left operand,
        except in the ``= with Any`` case where the right operand is returned."""
        result = compare_states(op, left, right)
        if left.has_any:
            return
        assert result.leq(left)

    @given(_ops, _prim_states, _prim_states)
    def test_empty_operand_gives_empty(self, op, left, right):
        if left.is_empty or right.is_empty:
            assert compare_states(op, left, right).is_empty

    @given(_ops, _prim_states, _prim_states, _prim_states)
    def test_monotone_in_left_operand(self, op, small, extra, right):
        """Compare is monotone: growing the left operand never shrinks the result.

        Monotonicity is what guarantees the solver's termination and soundness
        when value states grow during the fixed-point iteration.
        """
        big = small.join(extra)
        result_small = compare_states(op, small, right)
        result_big = compare_states(op, big, right)
        assert result_small.leq(result_big)
