"""End-to-end checks of the Figure 2 motivating example (JDK virtual threads).

SkipFlow must prove ``ThreadSet.remove`` unreachable when no virtual thread is
ever instantiated, because the ``false`` constant returned by ``isVirtual``
filters the branch predicate to an empty state.  The baseline analysis, which
neither tracks primitive constants nor honours predicate edges, must keep the
method reachable.
"""

from __future__ import annotations

from repro import AnalysisConfig, SkipFlowAnalysis
from tests.conftest import build_virtual_threads_program


def test_skipflow_proves_remove_unreachable(virtual_threads_program):
    result = SkipFlowAnalysis(virtual_threads_program, AnalysisConfig.skipflow()).run()
    assert result.is_method_reachable("SharedThreadContainer.onExit")
    assert result.is_method_reachable("Thread.isVirtual")
    assert not result.is_method_reachable("ThreadSet.remove")


def test_baseline_keeps_remove_reachable(virtual_threads_program):
    result = SkipFlowAnalysis(virtual_threads_program, AnalysisConfig.baseline_pta()).run()
    assert result.is_method_reachable("ThreadSet.remove")


def test_skipflow_keeps_remove_when_virtual_threads_used(
        virtual_threads_program_with_virtual):
    result = SkipFlowAnalysis(
        virtual_threads_program_with_virtual, AnalysisConfig.skipflow()).run()
    assert result.is_method_reachable("ThreadSet.remove")


def test_is_virtual_returns_false_constant(virtual_threads_program):
    result = SkipFlowAnalysis(virtual_threads_program, AnalysisConfig.skipflow()).run()
    return_state = result.return_state("Thread.isVirtual")
    assert return_state.constant_value == 0


def test_is_virtual_returns_any_when_both_branches_possible(
        virtual_threads_program_with_virtual):
    program = build_virtual_threads_program(use_virtual_threads=True)
    result = SkipFlowAnalysis(program, AnalysisConfig.skipflow()).run()
    # Only VirtualThread is instantiated in this variant, so isVirtual returns 1.
    assert result.return_state("Thread.isVirtual").constant_value == 1


def test_call_graph_edges(virtual_threads_program):
    result = SkipFlowAnalysis(virtual_threads_program, AnalysisConfig.skipflow()).run()
    edges = set(result.call_edges())
    assert ("Main.main", "SharedThreadContainer.onExit") in edges
    assert ("SharedThreadContainer.onExit", "Thread.isVirtual") in edges
    assert all(callee != "ThreadSet.remove" for _, callee in edges)
