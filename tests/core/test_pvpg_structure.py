"""Structural tests for PVPG construction (Appendix B.4)."""

import pytest

from repro.core.analysis import AnalysisConfig
from repro.core.flows import (
    FilterCompareFlow,
    FilterTypeFlow,
    ParameterFlow,
    PhiFlow,
    PhiPredFlow,
    SourceFlow,
)
from repro.core.pvpg import BranchKind, ProgramPVPG
from repro.core.pvpg_builder import PVPGBuilder
from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import CompareOp
from tests.conftest import build_virtual_threads_program


def build_graph(program, method_name, config=None):
    pvpg = ProgramPVPG()
    builder = PVPGBuilder(program, pvpg, config or AnalysisConfig.skipflow())
    return builder.build_method(program.method(method_name)), pvpg


@pytest.fixture
def vt_program():
    return build_virtual_threads_program()


class TestOnExitGraph:
    """The PVPG of Figure 7 (SharedThreadContainer.onExit)."""

    def test_parameter_flows(self, vt_program):
        graph, _ = build_graph(vt_program, "SharedThreadContainer.onExit")
        assert len(graph.parameter_flows) == 2
        assert all(isinstance(f, ParameterFlow) for f in graph.parameter_flows)

    def test_entry_flows_predicated_on_pred_on(self, vt_program):
        graph, pvpg = build_graph(vt_program, "SharedThreadContainer.onExit")
        param = graph.parameter_flows[0]
        assert pvpg.pred_on in param.predicates

    def test_invoke_observes_receiver(self, vt_program):
        graph, _ = build_graph(vt_program, "SharedThreadContainer.onExit")
        is_virtual = next(f for f in graph.invoke_flows if "isVirtual" in f.label)
        thread_param = graph.parameter_flows[1]
        assert is_virtual in thread_param.observers

    def test_invoke_becomes_predicate_of_following_filter(self, vt_program):
        graph, _ = build_graph(vt_program, "SharedThreadContainer.onExit")
        is_virtual = next(f for f in graph.invoke_flows if "isVirtual" in f.label)
        compare_filters = [f for f in graph.flows if isinstance(f, FilterCompareFlow)]
        assert any(f in is_virtual.predicate_targets for f in compare_filters)

    def test_remove_invoke_predicated_on_condition(self, vt_program):
        graph, pvpg = build_graph(vt_program, "SharedThreadContainer.onExit")
        remove = next(f for f in graph.invoke_flows if "remove" in f.label)
        # The remove call is NOT directly predicated on pred_on: it sits behind
        # the branch condition (through the load of virtualThreads).
        assert pvpg.pred_on not in remove.predicates

    def test_branch_record_classified_as_primitive_check(self, vt_program):
        graph, _ = build_graph(vt_program, "SharedThreadContainer.onExit")
        assert len(graph.branch_records) == 1
        assert graph.branch_records[0].kind is BranchKind.PRIMITIVE_CHECK

    def test_phi_pred_created_for_merge(self, vt_program):
        graph, _ = build_graph(vt_program, "SharedThreadContainer.onExit")
        assert any(isinstance(f, PhiPredFlow) for f in graph.flows)


class TestIsVirtualGraph:
    """The PVPG of the isVirtual method (right side of Figure 7)."""

    def test_type_check_filters_created_for_both_branches(self, vt_program):
        graph, _ = build_graph(vt_program, "Thread.isVirtual")
        filters = [f for f in graph.flows if isinstance(f, FilterTypeFlow)]
        assert len(filters) == 2
        assert {f.negated for f in filters} == {True, False}
        assert all(f.type_name == "BaseVirtualThread" for f in filters)

    def test_constants_predicated_on_their_filters(self, vt_program):
        graph, _ = build_graph(vt_program, "Thread.isVirtual")
        filters = {f.negated: f for f in graph.flows if isinstance(f, FilterTypeFlow)}
        constants = {f.expr.int_value: f for f in graph.flows
                     if isinstance(f, SourceFlow) and f.expr.int_value is not None}
        assert constants[1] in filters[False].predicate_targets
        assert constants[0] in filters[True].predicate_targets

    def test_phi_joins_both_constants(self, vt_program):
        graph, _ = build_graph(vt_program, "Thread.isVirtual")
        # One explicit phi for the joined result, plus a collision phi for the
        # filtered `this` value (both branches redefine it through their filters).
        result_phis = [f for f in graph.flows
                       if isinstance(f, PhiFlow) and "result" in f.label]
        assert len(result_phis) == 1
        sources = [f for f in graph.flows if isinstance(f, SourceFlow) and f.uses]
        assert all(result_phis[0] in s.uses for s in sources)

    def test_return_flow_fed_by_phi(self, vt_program):
        graph, _ = build_graph(vt_program, "Thread.isVirtual")
        returns = graph.return_flows
        assert len(returns) == 1
        phi = next(f for f in graph.flows if isinstance(f, PhiFlow))
        assert returns[0] in phi.uses

    def test_branch_record_is_type_check(self, vt_program):
        graph, _ = build_graph(vt_program, "Thread.isVirtual")
        assert graph.branch_records[0].kind is BranchKind.TYPE_CHECK


class TestBinaryComparisonStructure:
    def _graph(self):
        pb = ProgramBuilder()
        pb.declare_class("C")
        mb = pb.method("C", "cmp", params=["int", "int"], param_names=["x", "y"])
        x, y = mb.param(0), mb.param(1)
        mb.if_lt(x, y, "t", "e")
        mb.label("t")
        mb.return_void()
        mb.label("e")
        mb.return_void()
        pb.finish_method(mb)
        return build_graph(pb.build(), "C.cmp")[0]

    def test_two_filters_per_branch(self):
        graph = self._graph()
        filters = [f for f in graph.flows if isinstance(f, FilterCompareFlow)]
        # Two per branch: one for each operand.
        assert len(filters) == 4

    def test_filter_operators_cover_all_four_variants(self):
        graph = self._graph()
        ops = {f.op for f in graph.flows if isinstance(f, FilterCompareFlow)}
        assert ops == {CompareOp.LT, CompareOp.GT, CompareOp.GE, CompareOp.LE}

    def test_filters_chained_by_predicates(self):
        graph = self._graph()
        filters = [f for f in graph.flows if isinstance(f, FilterCompareFlow)]
        chained = [f for f in filters
                   if any(isinstance(p, FilterCompareFlow) for p in f.predicates)]
        assert len(chained) == 2

    def test_observe_edges_connect_operands(self):
        graph = self._graph()
        params = graph.parameter_flows
        observer_kinds = {type(o) for p in params for o in p.observers}
        assert FilterCompareFlow in observer_kinds

    def test_null_check_classification(self):
        pb = ProgramBuilder()
        pb.declare_class("C")
        pb.declare_class("D")
        mb = pb.method("C", "check", params=["D"])
        mb.if_null(mb.param(0), "t", "e")
        mb.label("t")
        mb.return_void()
        mb.label("e")
        mb.return_void()
        pb.finish_method(mb)
        graph = build_graph(pb.build(), "C.check")[0]
        assert graph.branch_records[0].kind is BranchKind.NULL_CHECK


class TestProgramPVPG:
    def test_field_flows_created_lazily(self, vt_program):
        pvpg = ProgramPVPG()
        decl = vt_program.hierarchy.lookup_field("SharedThreadContainer", "virtualThreads")
        first = pvpg.field_flow(decl)
        second = pvpg.field_flow(decl)
        assert first is second
        assert first.enabled

    def test_total_flow_count(self, vt_program):
        graph, pvpg = build_graph(vt_program, "Thread.isVirtual")
        pvpg.add_method_graph(graph)
        assert pvpg.total_flow_count == graph.flow_count + 1
        assert graph in [pvpg.method_graph("Thread.isVirtual")]

    def test_all_flows_lists_globals_and_methods(self, vt_program):
        graph, pvpg = build_graph(vt_program, "Thread.isVirtual")
        pvpg.add_method_graph(graph)
        flows = pvpg.all_flows()
        assert pvpg.pred_on in flows
        assert graph.flows[0] in flows
