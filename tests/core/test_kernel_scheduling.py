"""Scheduling-policy equivalence: every fair order reaches the same fixpoint.

The chaotic-iteration argument (see :mod:`repro.core.kernel`) promises that
worklist order changes solver *effort* only.  These tests pin that promise
down hard: for every registered scheduling policy the reachable set, the
linked call edges, and the final value state of every flow must be identical
to the ``fifo`` reference — on the tier-1 example programs and on a
wide-hierarchy benchmark spec — and ``fifo`` itself must reproduce the
seed's exact step counts (the checked-in regression baseline).
"""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel import available_scheduling_policies
from repro.lang import compile_source
from repro.workloads.generator import (
    BenchmarkSpec,
    HierarchySpec,
    generate_benchmark,
    spec_from_reduction,
)

QUICKSTART_SOURCE = """
class Config {
    boolean isTelemetryEnabled() { return false; }
}
class TelemetryService {
    void start() { MetricsLibrary.initialize(); }
}
class MetricsLibrary {
    static void initialize() { MetricsLibrary.connect(); }
    static void connect() { }
}
class Application {
    void run(Config config) {
        if (config.isTelemetryEnabled()) {
            TelemetryService telemetry = new TelemetryService();
            telemetry.start();
        }
        this.serveRequests();
    }
    void serveRequests() { }
}
class Main {
    static void main() {
        Application app = new Application();
        app.run(new Config());
    }
}
"""

_IMPL_COUNT = 10
MEGAMORPHIC_SOURCE = (
    "class Base { void visit() { } }\n"
    + "".join(f"class Impl{i} extends Base {{ void visit() {{ }} }}\n"
              for i in range(_IMPL_COUNT))
    + "class Sink { void accept(Base b) { b.visit(); } }\n"
    + "class Main { static void main() {\n"
    + "    Sink s = new Sink();\n"
    + "".join(f"    s.accept(new Impl{i}());\n" for i in range(_IMPL_COUNT))
    + "} }\n"
)

WIDE_SPEC = BenchmarkSpec(
    name="sched-wide", suite="test", core_methods=25, guarded_modules=(),
    hierarchies=(HierarchySpec(depth=2, fanout=5, call_sites=4),))

COMPOSED_SPEC = BenchmarkSpec(
    name="sched-composed", suite="test", core_methods=20, guarded_modules=(),
    hierarchies=(HierarchySpec(depth=1, fanout=12, call_sites=3),
                 HierarchySpec(depth=2, fanout=4, call_sites=3)),
    compose_hierarchies=True)

BASELINE_PATH = (Path(__file__).resolve().parents[2]
                 / "benchmarks" / "baselines" / "solver_steps.json")


def fixpoint_signature(result):
    """Everything a schedule must not change: reachability, edges, states.

    Value states are hash-consed, so states from different solver runs in
    one process compare by identity/equality directly; flows are matched by
    (method, label, kind) with a multiset to tolerate duplicate labels.
    """
    pvpg = result.pvpg
    edges = set()
    states = Counter()
    for graph in pvpg.methods.values():
        for flow in graph.flows:
            states[(graph.qualified_name, flow.label, flow.kind.value,
                    flow.state)] += 1
        for invoke in graph.invoke_flows:
            for callee in invoke.linked_callees:
                edges.add((graph.qualified_name, invoke.label, callee))
    for name, field_flow in pvpg.field_flows.items():
        states[("<fields>", name, field_flow.kind.value,
                field_flow.state)] += 1
    return frozenset(result.reachable_methods), edges, states


def _programs():
    return {
        "quickstart": lambda: compile_source(QUICKSTART_SOURCE),
        "megamorphic": lambda: compile_source(MEGAMORPHIC_SOURCE),
        "wide-hierarchy": lambda: generate_benchmark(WIDE_SPEC),
        "composed": lambda: generate_benchmark(COMPOSED_SPEC),
    }


class TestEquivalence:
    @pytest.mark.parametrize("config_name", ["skipflow", "baseline_pta"])
    def test_every_schedule_reaches_the_identical_fixpoint(self, config_name):
        base_config = getattr(AnalysisConfig, config_name)()
        for label, make_program in _programs().items():
            reference = SkipFlowAnalysis(make_program(), base_config).run()
            expected = fixpoint_signature(reference)
            for scheduling in available_scheduling_policies():
                result = SkipFlowAnalysis(
                    make_program(),
                    base_config.with_scheduling(scheduling)).run()
                assert fixpoint_signature(result) == expected, (
                    f"{scheduling} diverged from fifo on {label}")

    def test_schedules_agree_under_saturation_too(self):
        """With a cutoff the fixpoint is coarser but still schedule-invariant."""
        config = AnalysisConfig.skipflow().with_saturation_policy(
            "declared-type", 4)
        reference = SkipFlowAnalysis(generate_benchmark(WIDE_SPEC), config).run()
        for scheduling in available_scheduling_policies():
            result = SkipFlowAnalysis(
                generate_benchmark(WIDE_SPEC),
                config.with_scheduling(scheduling)).run()
            assert (result.reachable_methods == reference.reachable_methods)
            assert result.stats.saturated_flows > 0

    def test_schedules_really_differ_in_effort(self):
        """The policies are not all secretly fifo: lifo reorders the work."""
        program_steps = {
            scheduling: SkipFlowAnalysis(
                generate_benchmark(WIDE_SPEC),
                AnalysisConfig.skipflow().with_scheduling(scheduling)).run().steps
            for scheduling in ("fifo", "lifo")
        }
        assert program_steps["fifo"] != program_steps["lifo"]


class TestFifoIsTheSeed:
    def test_explicit_fifo_equals_default_config(self):
        spec = spec_from_reduction(name="sched-seed", suite="test",
                                   total_methods=90, reduction_percent=10.0)
        default = SkipFlowAnalysis(generate_benchmark(spec),
                                   AnalysisConfig.skipflow()).run()
        explicit = SkipFlowAnalysis(
            generate_benchmark(spec),
            AnalysisConfig.skipflow().with_scheduling("fifo")).run()
        assert explicit.steps == default.steps
        assert explicit.stats.joins == default.stats.joins
        assert fixpoint_signature(explicit) == fixpoint_signature(default)

    def test_fifo_reproduces_the_checked_in_seed_steps(self):
        """The regression baseline was recorded by the seed solver; fifo must
        land on those exact counts (the CI gate checks all sizes, this test
        pins the smallest one into the unit suite)."""
        baseline = json.loads(BASELINE_PATH.read_text())
        spec = spec_from_reduction(name="scaling-100", suite="scaling",
                                   total_methods=100, reduction_percent=10.0)
        for config in (AnalysisConfig.baseline_pta(), AnalysisConfig.skipflow()):
            result = SkipFlowAnalysis(
                generate_benchmark(spec),
                config.with_scheduling("fifo")).run()
            assert result.steps == baseline[f"scaling-100/{config.name}"]
