"""The reachability-refined allocated-type saturation policy.

``allocated-type-reachable`` counts allocation sites only in *reachable*
methods: the solver runs to a fixpoint, refreshes the policy's origin set
from the final reachable set, re-collapses saturated flows when origins
grew, and re-runs until the origins are stable.  The origin set is a
function of the final reachable set alone and only ever grows, so the
refinement is schedule-independent and warm-resumable.
"""

import pytest

from repro.core.analysis import AnalysisConfig, SkipFlowAnalysis
from repro.core.kernel import (
    ReachableAllocatedSaturation,
    available_saturation_policies,
    make_saturation_policy,
    reachable_allocated_types,
)
from repro.lang import compile_source
from repro.workloads.edits import EditStepSpec, build_edit_delta
from repro.workloads.generator import BenchmarkSpec, generate_benchmark

THRESHOLD = 3

PLUGIN_SPEC = BenchmarkSpec(
    name="reach-plug", suite="test", core_methods=5, guarded_modules=(),
)


def run_with(program, saturation, threshold=THRESHOLD, scheduling=None):
    config = AnalysisConfig.skipflow()
    if saturation != "off":
        config = config.with_saturation_policy(saturation, threshold)
    if scheduling is not None:
        config = config.with_scheduling(scheduling)
    return SkipFlowAnalysis(program, config).run()


class TestReachableAllocatedTypes:
    def test_counts_new_sites_only_in_reachable_methods(self):
        program = compile_source("""
class Live { }
class Dead { }
class Main {
  static void main() { Live l = new Live(); }
  static void never() { Dead d = new Dead(); }
}
""")
        reachable = frozenset({"Main.main"})
        origins = reachable_allocated_types(program, reachable=reachable)
        assert "Live" in origins
        assert "Dead" not in origins
        # Widening the reachable set picks the other site up.
        wider = reachable_allocated_types(
            program, reachable=frozenset({"Main.main", "Main.never"}))
        assert {"Live", "Dead"} <= wider

    def test_root_seeds_are_unconditional(self):
        program = compile_source("""
class Plugin { void start() { } }
class Turbo extends Plugin { void start() { } }
class Host { void boot(Plugin plugin) { plugin.start() ; } }
""")
        origins = reachable_allocated_types(
            program, reachable=frozenset(), roots=("Host.boot",))
        assert {"Host", "Plugin", "Turbo"} <= origins

    def test_registered_and_needs_program(self):
        assert "allocated-type-reachable" in available_saturation_policies()
        program = compile_source("class Main { static void main() { } }")
        policy = make_saturation_policy(
            "allocated-type-reachable", program.hierarchy, 4, program=program)
        assert isinstance(policy, ReachableAllocatedSaturation)
        with pytest.raises(ValueError, match="needs the program"):
            make_saturation_policy("allocated-type-reachable",
                                   program.hierarchy, 4)

    def test_origins_grow_monotonically(self):
        program = compile_source("""
class A { }
class B { }
class Main {
  static void main() { A a = new A(); }
  static void more() { B b = new B(); }
}
""")
        policy = ReachableAllocatedSaturation(program.hierarchy, 4, program)
        assert policy.refresh_origins(frozenset({"Main.main"}), (), ())
        first = set(policy.origins)
        # Same reachable set again: no growth, no re-collapse needed.
        assert not policy.refresh_origins(frozenset({"Main.main"}), (), ())
        assert policy.refresh_origins(
            frozenset({"Main.main", "Main.more"}), (), ())
        assert first < set(policy.origins)
        # Shrinking the reachable set never shrinks the origins.
        assert not policy.refresh_origins(frozenset(), (), ())
        assert "B" in policy.origins


class TestRefinedSolve:
    def _plugin_program(self):
        from repro.ir.builder import ProgramBuilder
        from repro.workloads.applications import (
            PluginSystemSpec,
            add_plugin_system_module,
        )

        pb = ProgramBuilder()
        handle = add_plugin_system_module(
            pb, "Rp", PluginSystemSpec(plugins=8, active=5, hooks=2,
                                       payload_methods=6))
        pb.add_entry_point(handle.driver)
        return pb.build(), handle

    def test_matches_exact_where_whole_program_scan_reinflates(self):
        program, _ = self._plugin_program()
        exact = run_with(program, "off")
        allocated = run_with(program, "allocated-type")
        refined = run_with(program, "allocated-type-reachable")
        assert refined.stats.saturated_flows > 0
        assert (allocated.reachable_method_count
                > exact.reachable_method_count)
        assert refined.reachable_methods == exact.reachable_methods

    def test_schedule_independent(self):
        program, _ = self._plugin_program()
        fifo = run_with(program, "allocated-type-reachable",
                        scheduling="fifo")
        for scheduling in ("lifo", "degree", "rpo", "hybrid"):
            other = run_with(program, "allocated-type-reachable",
                             scheduling=scheduling)
            assert other.reachable_methods == fifo.reachable_methods
            assert (sorted(other.call_edges())
                    == sorted(fifo.call_edges()))

    def test_warm_resume_equals_cold_after_monotone_edit(self):
        """The refinement loop re-runs cleanly from a resumed state too."""
        from repro.api import AnalysisSession

        options = dict(saturation_policy="allocated-type-reachable",
                       saturation_threshold=THRESHOLD)
        warm_session = AnalysisSession(generate_benchmark(PLUGIN_SPEC))
        state = warm_session.run("skipflow", **options).raw.solver_state

        step = EditStepSpec(kind="add-guarded-module", index=0)
        warm_session.update(build_edit_delta(PLUGIN_SPEC, step))
        warm = warm_session.run("skipflow", resume=state, **options)

        cold_session = AnalysisSession(generate_benchmark(PLUGIN_SPEC))
        cold_session.update(build_edit_delta(PLUGIN_SPEC, step))
        cold = cold_session.run("skipflow", **options)

        assert (set(warm.reachable_methods)
                == set(cold.reachable_methods))
        assert set(warm.call_edges) == set(cold.call_edges)
        assert set(warm.stub_methods) == set(cold.stub_methods)

    def test_off_policy_keeps_exact_solver_steps(self):
        """The refinement hook must not disturb the default hot path: with
        no saturation policy the solver takes the bit-identical seed steps
        (the CI gate compares them exactly)."""
        program = generate_benchmark(PLUGIN_SPEC)
        first = run_with(program, "off")
        second = run_with(program, "off")
        assert first.steps == second.steps
        assert first.stats.joins == second.stats.joins
