"""Fail on dead relative links in the documentation.

Scans ``README.md`` and every ``*.md`` file under ``docs/`` for Markdown
links, checks that each *relative* link target exists, and — when the link
carries a ``#fragment`` pointing at a Markdown file — that the target file
actually contains a heading with that GitHub-style anchor.  External links
(``http(s)://``, ``mailto:``) are ignored; this is a repository-consistency
gate, not a network crawler.

Used by CI (see ``.github/workflows/ci.yml``)::

    python tools/check_doc_links.py

Exits 0 when every link resolves, 1 otherwise (listing each dead link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: [text](target).  Good enough for our docs — we do
#: not use reference-style links or angle-bracketed targets.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def documentation_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def github_anchor(heading: str) -> str:
    """The GitHub anchor slug for a heading: lowercase, punctuation stripped,
    spaces to hyphens (backticks and other formatting removed)."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_~]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    return {github_anchor(match.group(1))
            for match in _HEADING_RE.finditer(path.read_text(encoding="utf-8"))}


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Dead links of one file as (link, reason) pairs."""
    problems: List[Tuple[str, str]] = []
    for match in _LINK_RE.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        raw_path, _, fragment = target.partition("#")
        resolved = (path.parent / raw_path).resolve() if raw_path else path
        if not resolved.exists():
            problems.append((target, "target does not exist"))
            continue
        if fragment and resolved.suffix == ".md":
            if github_anchor(fragment) not in anchors_of(resolved):
                problems.append((target, f"no heading for anchor #{fragment}"))
    return problems


def main() -> int:
    files = documentation_files()
    dead = 0
    checked = 0
    for path in files:
        for match in _LINK_RE.finditer(path.read_text(encoding="utf-8")):
            if not match.group(1).startswith(_EXTERNAL_PREFIXES):
                checked += 1
        for target, reason in check_file(path):
            print(f"DEAD LINK {path.relative_to(REPO_ROOT)}: "
                  f"({target}) — {reason}", file=sys.stderr)
            dead += 1
    if dead:
        print(f"{dead} dead link(s) across {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"docs links ok: {checked} relative link(s) in {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
